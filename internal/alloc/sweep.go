package alloc

import (
	"fmt"
	"math/bits"

	"repro/internal/mem"
	"repro/internal/trace"
)

// SweepResult reports what one sweep reclaimed and retained.
type SweepResult struct {
	ObjectsFreed   uint64
	BytesFreed     uint64
	ObjectsLive    uint64
	BytesLive      uint64
	BlocksReleased int // blocks returned to the free structure
	BlocksKept     int // dedicated blocks retained
}

// markedBytes returns the byte half of a block's mark summary. Blocks
// hold a single size class, so it is derived from markedCount rather
// than maintained as a second counter on the mark hot path.
func (b *blockDesc) markedBytes() uint64 {
	return uint64(b.markedCount) * uint64(int(b.objWords)*mem.WordBytes)
}

// sweepWordMask returns the bits of bitmap word wi (covering slots
// [wi*64, wi*64+64)) that correspond to usable slots, i.e. slots in
// [first, nslots).
func sweepWordMask(wi, first, nslots int) uint64 {
	lo := wi << 6
	start := first - lo
	if start < 0 {
		start = 0
	}
	end := nslots - lo
	if end > 64 {
		end = 64
	}
	if end <= start {
		return 0
	}
	return ^uint64(0) >> (64 - uint(end-start)) << uint(start)
}

// sweepSmall sweeps one small block in place: unmarked allocated slots
// are freed (alloc bit cleared, body zeroed), every non-live slot is
// threaded onto the block's free list in address order, and — when
// clearMarks is set — mark bits and the mark summary are cleared. The
// bitmaps are consumed a word at a time: zero words of interest are
// skipped whole, live words are resolved with trailing/leading-zero
// scans instead of per-slot bitGet. Threading walks slots in descending
// address order (highest word first, highest bit within each word
// first), producing exactly the list the seed's per-slot loop built.
//
// It performs no accounting: callers compute the SweepResult from the
// block's summary before the bits change (eagerly at the barrier in
// both sweep modes).
func (a *Allocator) sweepSmall(bi int, clearMarks bool) {
	b := &a.blocks[bi]
	words := int(b.objWords)
	nslots := slotsPerBlock(words)
	first := a.firstSlot(words)
	base := a.blockBase(bi)
	hw := a.blockWords(bi)
	typed := b.desc >= 0
	idx := int(b.class)
	if b.atomic {
		idx += NumClasses
	}
	tkey := typedKey{class: int(b.class), desc: b.desc}
	var head mem.Addr
	if typed {
		head = a.typedFree[tkey]
	} else {
		head = a.freeList[idx]
	}
	for wi := len(b.allocBits) - 1; wi >= 0; wi-- {
		valid := sweepWordMask(wi, first, nslots)
		if valid == 0 {
			continue
		}
		slot0 := wi << 6
		am := b.allocBits[wi] & valid
		mm := b.markBits[wi] & am
		if dead := am &^ mm; dead != 0 {
			b.allocBits[wi] &^= dead
			for m := dead; m != 0; m &= m - 1 {
				slot := slot0 + bits.TrailingZeros64(m)
				// Zero the freed body so the next owner gets clean
				// memory; the first word is overwritten by the link.
				for w := 1; w < words; w++ {
					hw[slot*words+w] = 0
				}
			}
		}
		if clearMarks {
			b.markBits[wi] = 0
		}
		for m := valid &^ mm; m != 0; {
			top := 63 - bits.LeadingZeros64(m)
			m &^= 1 << uint(top)
			slot := slot0 + top
			hw[slot*words] = mem.Word(head)
			head = base + mem.Addr(slot*words*mem.WordBytes)
		}
	}
	if typed {
		a.typedFree[tkey] = head
	} else {
		a.freeList[idx] = head
	}
	b.liveSlots = b.markedCount
	if clearMarks {
		b.markedCount = 0
	}
}

// sweep is the eager sweep: it reclaims every unmarked object and
// rebuilds the size-class free lists inside the collection barrier, as
// the paper's collector does after each mark phase. When clearMarks is
// true (full collections) survivors' mark bits are cleared for the next
// cycle; when false (SweepSticky, minor collections) they are preserved
// as the "old" flag.
//
// Wholly empty blocks are returned to the free block structure (address
// ordered with coalescing by default), which both lets the blacklist
// steer future placement and implements the paper's fragmentation
// argument for sorted free lists.
func (a *Allocator) sweep(clearMarks bool) SweepResult {
	a.FinishSweep() // no-op unless a lazy cycle left blocks pending
	// Outstanding bump spans hold allocated-but-unissued slots; return
	// them before the accounting below reads liveSlots. The collector
	// flushes before marking, so this is a no-op there — it covers
	// direct allocator use.
	a.FlushSpans()
	var r SweepResult
	// Free lists and partial-block queues are rebuilt from scratch: the
	// threaded slots and queued blocks may be released below.
	for i := range a.freeList {
		a.freeList[i] = 0
	}
	for k := range a.typedFree {
		a.typedFree[k] = 0
	}
	a.resetLineQueues()
	for bi := 0; bi < len(a.blocks); bi++ {
		b := &a.blocks[bi]
		switch b.state {
		case blockFree, blockLargeCont:
			continue
		case blockLargeHead:
			n := int(b.spanLen)
			if b.markBits[0]&1 != 0 {
				if clearMarks {
					b.markBits[0] = 0
					b.markedCount = 0
				}
				r.ObjectsLive++
				r.BytesLive += uint64(int(b.objWords) * mem.WordBytes)
				r.BlocksKept += n
			} else {
				r.ObjectsFreed++
				r.BytesFreed += uint64(int(b.objWords) * mem.WordBytes)
				a.releaseSpan(bi, n)
				r.BlocksReleased += n
				a.stats.BlocksDedicated -= n
				a.stats.BlocksFree += n
			}
			bi += n - 1
		case blockSmall:
			objBytes := uint64(int(b.objWords) * mem.WordBytes)
			live := int(b.markedCount)
			freed := int(b.liveSlots) - live
			r.ObjectsFreed += uint64(freed)
			r.BytesFreed += uint64(freed) * objBytes
			if live == 0 {
				a.releaseSpan(bi, 1)
				r.BlocksReleased++
				a.stats.BlocksDedicated--
				a.stats.BlocksFree++
				continue
			}
			if a.isLineBlock(b) {
				a.lineSweepSmall(bi, clearMarks)
				a.requeueLineBlock(bi, b)
			} else {
				a.sweepSmall(bi, clearMarks)
			}
			r.ObjectsLive += uint64(live)
			r.BytesLive += uint64(live) * objBytes
			r.BlocksKept++
		}
	}
	a.stats.BytesLive = r.BytesLive
	a.stats.ObjectsLive = r.ObjectsLive
	return r
}

// sweepLazy is the lazy sweep's collection barrier. The per-block mark
// summaries let it compute the exact SweepResult the eager sweep would
// report while doing only O(blocks) work: empty blocks (markedCount 0)
// are released to the free structure immediately, fully-live blocks
// need no threading at all, and only mixed blocks are queued as
// sweep-pending for refill to process on demand. The deferred work per
// block is pure threading and bit maintenance; every reclamation total
// is already accounted here.
//
// Soundness: a pending block's alloc and mark bits encode the cycle's
// liveness verdict, so all pending blocks must be swept (FinishSweep)
// before mark bits are touched again — the collector finishes the sweep
// at the start of the next cycle, and ClearMarks refuses to run over
// pending blocks by finishing them first.
func (a *Allocator) sweepLazy(clearMarks bool) SweepResult {
	a.FinishSweep() // complete the previous cycle's leftovers first
	a.FlushSpans()  // see sweep: return bump spans before accounting
	var r SweepResult
	for i := range a.freeList {
		a.freeList[i] = 0
	}
	for k := range a.typedFree {
		a.typedFree[k] = 0
	}
	a.resetLineQueues()
	a.lazyClearMarks = clearMarks
	for bi := 0; bi < len(a.blocks); bi++ {
		b := &a.blocks[bi]
		switch b.state {
		case blockFree, blockLargeCont:
			continue
		case blockLargeHead:
			// Large objects are classified entirely by the summary; they
			// never go pending.
			n := int(b.spanLen)
			if b.markedCount != 0 {
				if clearMarks {
					b.markBits[0] = 0
					b.markedCount = 0
				}
				r.ObjectsLive++
				r.BytesLive += uint64(int(b.objWords) * mem.WordBytes)
				r.BlocksKept += n
			} else {
				r.ObjectsFreed++
				r.BytesFreed += uint64(int(b.objWords) * mem.WordBytes)
				a.releaseSpan(bi, n)
				r.BlocksReleased += n
				a.stats.BlocksDedicated -= n
				a.stats.BlocksFree += n
			}
			bi += n - 1
		case blockSmall:
			words := int(b.objWords)
			objBytes := uint64(words * mem.WordBytes)
			live := int(b.markedCount)
			freed := int(b.liveSlots) - live
			r.ObjectsFreed += uint64(freed)
			r.BytesFreed += uint64(freed) * objBytes
			if live == 0 {
				a.releaseSpan(bi, 1)
				r.BlocksReleased++
				a.stats.BlocksDedicated--
				a.stats.BlocksFree++
				continue
			}
			r.ObjectsLive += uint64(live)
			r.BytesLive += uint64(live) * objBytes
			r.BlocksKept++
			if live == slotsPerBlock(words)-a.firstSlot(words) {
				// Fully live: no slots to thread. A full cycle still
				// clears its marks here — a handful of word stores.
				if clearMarks {
					for i := range b.markBits {
						b.markBits[i] = 0
					}
					b.markedCount = 0
				}
				continue
			}
			b.pendingSweep = true
			a.pendingBlocks++
			if a.isLineBlock(b) {
				// Mixed line blocks queue as deferred carve targets: the
				// first carve (or FinishSweep) runs the line sweep, so the
				// deferred work drains through the same queue the bump
				// refill consumes.
				b.bumpQueued = true
				a.linePartial[lineIdx(b)] = append(a.linePartial[lineIdx(b)], bi)
				continue
			}
			if b.desc >= 0 {
				k := typedKey{class: int(b.class), desc: b.desc}
				a.sweepPendingTyped[k] = append(a.sweepPendingTyped[k], bi)
			} else {
				idx := int(b.class)
				if b.atomic {
					idx += NumClasses
				}
				a.sweepPending[idx] = append(a.sweepPending[idx], bi)
			}
		}
	}
	a.stats.BytesLive = r.BytesLive
	a.stats.ObjectsLive = r.ObjectsLive
	return r
}

// sweepBlock completes the deferred sweep of one pending block.
func (a *Allocator) sweepBlock(bi int) {
	b := &a.blocks[bi]
	if !b.pendingSweep {
		return
	}
	b.pendingSweep = false
	a.pendingBlocks--
	a.stats.LazySweptBlocks++
	a.tracer.Emit(trace.EvSweepDrain, int64(bi), int64(a.pendingBlocks), 0)
	if a.isLineBlock(b) {
		a.lineSweepSmall(bi, a.lazyClearMarks)
	} else {
		a.sweepSmall(bi, a.lazyClearMarks)
	}
}

// popPending pops the highest-index still-pending block off a queue.
// Entries whose block was already swept out of band (by Free) are
// discarded.
func (a *Allocator) popPending(q *[]int) (int, bool) {
	for len(*q) > 0 {
		bi := (*q)[len(*q)-1]
		*q = (*q)[:len(*q)-1]
		if a.blocks[bi].pendingSweep {
			return bi, true
		}
	}
	return 0, false
}

// FinishSweep completes all deferred sweep work immediately, returning
// the number of blocks swept. With eager sweeping (or nothing pending)
// it is a no-op. The collector calls it before every mark phase so that
// no stale liveness bits survive into the next cycle; tests and
// measurements call it to observe final reclamation state.
func (a *Allocator) FinishSweep() int {
	if a.pendingBlocks == 0 {
		return 0
	}
	n := 0
	for idx := range a.sweepPending {
		for _, bi := range a.sweepPending[idx] {
			if a.blocks[bi].pendingSweep {
				a.sweepBlock(bi)
				n++
			}
		}
		a.sweepPending[idx] = a.sweepPending[idx][:0]
	}
	for k, q := range a.sweepPendingTyped {
		for _, bi := range q {
			if a.blocks[bi].pendingSweep {
				a.sweepBlock(bi)
				n++
			}
		}
		a.sweepPendingTyped[k] = q[:0]
	}
	// Line blocks defer through the partial-block queues. Unlike the
	// free-list queues the entries stay: a swept line block remains a
	// carve target for the bump refill.
	for idx := range a.linePartial {
		for _, bi := range a.linePartial[idx] {
			if a.blocks[bi].pendingSweep {
				a.sweepBlock(bi)
				n++
			}
		}
	}
	return n
}

// SweepPending returns the number of blocks whose sweep is deferred.
func (a *Allocator) SweepPending() int { return a.pendingBlocks }

// SweepChunk performs up to n deferred block sweeps that the allocator
// itself would perform next, for a background sweeper running between
// collections. The address-identity rule: a pending block of class idx
// is swept only while that class's free list is empty — exactly the
// demand-drain condition of refill — and popPending yields the same
// block refill would pick, so every transition the sweeper performs is
// one the next allocation would have performed anyway, and allocation
// addresses stay bit-identical to lazy (hence eager) sweeping. Line
// blocks are skipped entirely: they drain through the partial-block
// carve queues, whose pop order is allocation-driven.
//
// It returns the number of blocks swept; 0 means no class currently
// qualifies (every pending class has a stocked list or is line-queued),
// not necessarily that nothing is pending.
func (a *Allocator) SweepChunk(n int) int {
	if n <= 0 || a.pendingBlocks == 0 {
		return 0
	}
	swept := 0
	for idx := range a.sweepPending {
		for swept < n && a.freeList[idx] == 0 {
			bi, ok := a.popPending(&a.sweepPending[idx])
			if !ok {
				break
			}
			a.sweepBlock(bi)
			swept++
		}
		if swept >= n {
			return swept
		}
	}
	for k := range a.sweepPendingTyped {
		q := a.sweepPendingTyped[k]
		changed := false
		for swept < n && a.typedFree[k] == 0 && len(q) > 0 {
			bi, ok := a.popPending(&q)
			changed = true
			if !ok {
				break
			}
			a.sweepBlock(bi)
			swept++
		}
		if changed {
			a.sweepPendingTyped[k] = q
		}
		if swept >= n {
			return swept
		}
	}
	return swept
}

// ClearMarks clears every mark bit (and mark summary) without sweeping.
// The collector uses it for mark-only experiments and to reset sticky
// bits before a full generational cycle. Pending lazy sweeps are
// finished first: their mark bits encode the previous cycle's liveness
// and must be consumed, not discarded.
func (a *Allocator) ClearMarks() {
	a.FinishSweep()
	for bi := range a.blocks {
		b := &a.blocks[bi]
		switch b.state {
		case blockLargeHead:
			b.markBits[0] = 0
			b.markedCount = 0
		case blockSmall:
			for i := range b.markBits {
				b.markBits[i] = 0
			}
			b.markedCount = 0
		}
	}
}

// CountMarked returns the number and total bytes of marked objects; it
// is used by mark-only experiments ("apparently accessible" counts in
// the paper's section 3.1). The count is computed from the bitmaps with
// word-at-a-time population counts — independently of the maintained
// summaries, so tests can cross-check the two.
func (a *Allocator) CountMarked() (objects uint64, bytes uint64) {
	for bi := range a.blocks {
		b := &a.blocks[bi]
		switch b.state {
		case blockLargeHead:
			if b.markBits[0]&1 != 0 {
				objects++
				bytes += uint64(int(b.objWords) * mem.WordBytes)
			}
		case blockSmall:
			n := 0
			for _, w := range b.markBits {
				n += bits.OnesCount64(w)
			}
			objects += uint64(n)
			bytes += uint64(n) * uint64(int(b.objWords)*mem.WordBytes)
		}
	}
	return objects, bytes
}

// Free explicitly deallocates the object at base, like the original
// collector's GC_free. The paper's leak-detection usage mixes explicit
// deallocation with collection; tests also use Free to construct
// specific heap shapes.
func (a *Allocator) Free(base mem.Addr) error {
	if !a.InCommitted(base) {
		return fmt.Errorf("alloc: Free(%#x): not a heap address", uint32(base))
	}
	bi := a.blockIndex(base)
	b := &a.blocks[bi]
	hw := a.blockWords(bi)
	switch b.state {
	case blockLargeHead:
		if base != a.blockBase(bi) {
			return fmt.Errorf("alloc: Free(%#x): not an object base", uint32(base))
		}
		n := int(b.spanLen)
		a.releaseSpan(bi, n)
		a.stats.BlocksDedicated -= n
		a.stats.BlocksFree += n
		return nil
	case blockSmall:
		words := int(b.objWords)
		off := int(base - a.blockBase(bi))
		if off%(words*mem.WordBytes) != 0 {
			return fmt.Errorf("alloc: Free(%#x): not an object base", uint32(base))
		}
		slot := off / (words * mem.WordBytes)
		if slot >= slotsPerBlock(words) {
			return fmt.Errorf("alloc: Free(%#x): not allocated", uint32(base))
		}
		if b.pendingSweep {
			// Complete the deferred sweep first: freeing a slot the lazy
			// sweep still considers dead-or-free would double-thread it.
			// The stale queue entry is discarded when popped.
			if a.isLineBlock(b) {
				// In the free-list profile this sweepBlock threads the
				// block's slots onto the list HEAD, above everything
				// already threaded. Mirror that hoist: return the class's
				// central span (its block re-queues behind) and move this
				// block to the back of the queue — the next-popped
				// position. The duplicate entry is harmless: carving is
				// bits-driven and exhausted entries are skipped.
				idx := lineIdx(b)
				if s := a.lineSpans[idx]; s.Cursor < s.Limit {
					a.lineSpans[idx] = Span{}
					a.ReturnSpan(s.Cursor, s.Limit)
				}
				a.sweepBlock(bi)
				a.linePartial[idx] = append(a.linePartial[idx], bi)
				b.bumpQueued = true
			} else {
				a.sweepBlock(bi)
			}
		}
		if !bitGet(b.allocBits, slot) {
			return fmt.Errorf("alloc: Free(%#x): not allocated", uint32(base))
		}
		if a.isLineBlock(b) {
			return a.freeLineSlot(bi, b, base, slot, words)
		}
		bitClear(b.allocBits, slot)
		if bitGet(b.markBits, slot) {
			bitClear(b.markBits, slot)
			b.markedCount--
		}
		b.liveSlots--
		for w := 1; w < words; w++ {
			hw[slot*words+w] = 0
		}
		if b.desc >= 0 {
			tkey := typedKey{class: int(b.class), desc: b.desc}
			hw[slot*words] = mem.Word(a.typedFree[tkey])
			a.typedFree[tkey] = base
			return nil
		}
		idx := int(b.class)
		if b.atomic {
			idx += NumClasses
		}
		hw[slot*words] = mem.Word(a.freeList[idx])
		a.freeList[idx] = base
		return nil
	}
	return fmt.Errorf("alloc: Free(%#x): not an object", uint32(base))
}
