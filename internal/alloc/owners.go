package alloc

import "repro/internal/mem"

// Per-tenant byte attribution (core's multi-tenant serving layer, see
// DESIGN.md section 5i). The allocator keeps an optional side table
// mapping object base addresses to the tenant that allocated them, so
// over-budget policies can credit a tenant when its objects die and an
// eviction can enumerate exactly the objects a tenant still owns.
//
// The table is nil until the first TagOwner call: worlds that never
// create a budgeted tenant pay nothing — no map, no lookups, no change
// to any allocation path (the unbudgeted-tenant differential test pins
// this bit-for-bit). All methods are called under the world's central
// lock (and, where they read block state, inside lockHeapLocked), like
// every other allocator mutation.

// ownerRec is one owned object: the owning tenant and the bytes its
// allocation charged (the padded class size for small and typed
// objects, the exact word size for large ones — the same value the
// central BytesAllocated accounting used).
type ownerRec struct {
	id    int32
	bytes uint64
}

// SetOwnerCredit installs the callback ReconcileOwners and TagOwner
// displacement use to return a dead object's bytes to its tenant.
func (a *Allocator) SetOwnerCredit(fn func(id int32, objects, bytes uint64)) {
	a.ownerCredit = fn
}

// TagOwner records that the object at base is owned by tenant id and
// charged the given bytes. A stale record at the same address (the
// slot died, was reconciled late or never, and was reallocated) is
// credited back to its previous owner first, so attribution can never
// leak across a reallocation.
func (a *Allocator) TagOwner(base mem.Addr, id int32, bytes uint64) {
	if a.owned == nil {
		a.owned = make(map[mem.Addr]ownerRec)
	}
	if old, ok := a.owned[base]; ok && a.ownerCredit != nil {
		a.ownerCredit(old.id, 1, old.bytes)
	}
	a.owned[base] = ownerRec{id: id, bytes: bytes}
}

// UntagOwner drops the ownership record at base without crediting
// anyone: the slot was carved for a tenant's cache but never consumed
// (safepoint flushes return such slots to the central free lists).
func (a *Allocator) UntagOwner(base mem.Addr) {
	if a.owned != nil {
		delete(a.owned, base)
	}
}

// TakeOwner removes and returns the ownership record at base, for an
// explicit Free that credits the tenant immediately.
func (a *Allocator) TakeOwner(base mem.Addr) (id int32, bytes uint64, ok bool) {
	rec, ok := a.owned[base]
	if ok {
		delete(a.owned, base)
	}
	return rec.id, rec.bytes, ok
}

// ReconcileOwners walks the ownership table and credits every record
// whose object is no longer allocated — swept by the cycle that just
// finished, or classified dead by a lazy barrier (IsAllocated reads a
// pending-sweep block's mark bits, so reconciliation does not wait for
// the demand sweep). Returns the total objects and bytes credited.
// Called at collection barriers and before over-budget policy
// decisions; a no-op (nil map) until the first budgeted tenant.
func (a *Allocator) ReconcileOwners() (objects, bytes uint64) {
	for base, rec := range a.owned {
		if a.IsAllocated(base) {
			continue
		}
		delete(a.owned, base)
		objects++
		bytes += rec.bytes
		if a.ownerCredit != nil {
			a.ownerCredit(rec.id, 1, rec.bytes)
		}
	}
	return objects, bytes
}

// OwnedOf returns the base addresses of every object tenant id still
// owns, in unspecified order (eviction frees them all; order does not
// affect reclamation totals).
func (a *Allocator) OwnedOf(id int32) []mem.Addr {
	var out []mem.Addr
	for base, rec := range a.owned {
		if rec.id == id {
			out = append(out, base)
		}
	}
	return out
}

// OwnedBytes sums the charged bytes of every object tenant id still
// owns — after a full sweep and reconcile it must equal the tenant's
// live-byte counter exactly (the attribution-drift invariant the SLO
// test asserts).
func (a *Allocator) OwnedBytes(id int32) uint64 {
	var sum uint64
	for _, rec := range a.owned {
		if rec.id == id {
			sum += rec.bytes
		}
	}
	return sum
}

// OwnerOf returns the tenant owning the object at base, if any — the
// per-object view the retention watcher uses to build per-tenant
// attribution keys (OwnedOf/OwnedBytes are the per-tenant views).
func (a *Allocator) OwnerOf(base mem.Addr) (id int32, ok bool) {
	rec, ok := a.owned[base]
	return rec.id, ok
}

// HasOwners reports whether any ownership records exist (the
// collection barrier skips reconciliation entirely when none do).
func (a *Allocator) HasOwners() bool { return len(a.owned) > 0 }
