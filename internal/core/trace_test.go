package core

import (
	"bytes"
	"regexp"
	"testing"

	"repro/internal/mem"
	"repro/internal/trace"
)

// kindSeq extracts the kind sequence from a recorder's surviving
// events, filtered to the given set (nil keeps everything).
func kindSeq(r *trace.Recorder, keep map[trace.Kind]bool) []trace.Kind {
	var out []trace.Kind
	for _, ev := range r.Events() {
		if keep == nil || keep[ev.Kind] {
			out = append(out, ev.Kind)
		}
	}
	return out
}

func countKind(r *trace.Recorder, k trace.Kind) int {
	n := 0
	for _, ev := range r.Events() {
		if ev.Kind == k {
			n++
		}
	}
	return n
}

// churn allocates count two-word objects, rooting every other one in
// consecutive data-segment slots starting at base. Identical input
// worlds perform identical work — the differential tests rely on it.
func churn(t *testing.T, w *World, data *mem.Segment, base mem.Addr, count int) []mem.Addr {
	t.Helper()
	addrs := make([]mem.Addr, 0, count)
	for i := 0; i < count; i++ {
		a, err := w.Allocate(2, false)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
		if i%2 == 0 {
			if err := data.Store(base+mem.Addr(4*(i/2)), mem.Word(a)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return addrs
}

// TestCollectZeroAllocsUntraced is the overhead budget's teeth: with no
// tracer attached, a steady-state collection must not allocate — the
// nil-recorder fast path, the metrics' pre-registered atomics, and the
// root-scan scratch slice together keep the whole cycle allocation
// free, so observability costs nothing when off.
func TestCollectZeroAllocsUntraced(t *testing.T) {
	w := newWorld(t, Config{GCDivisor: -1})
	data := addData(t, w, "data", 0x2000, 4096)
	churn(t, w, data, 0x2000, 64)
	w.Collect() // warm up: size the mark stack and sweep structures
	w.Collect()
	avg := testing.AllocsPerRun(10, func() { w.Collect() })
	if avg != 0 {
		t.Fatalf("untraced Collect allocates %v times per cycle, want 0", avg)
	}
}

// TestCollectZeroAllocsUntracedLazy repeats the budget check with lazy
// sweeping: deferring and draining sweep work must not allocate either.
func TestCollectZeroAllocsUntracedLazy(t *testing.T) {
	w := newWorld(t, Config{GCDivisor: -1, LazySweep: true})
	data := addData(t, w, "data", 0x2000, 4096)
	churn(t, w, data, 0x2000, 64)
	w.Collect()
	w.Collect()
	w.FinishSweep()
	avg := testing.AllocsPerRun(10, func() {
		w.Collect()
		w.FinishSweep()
	})
	if avg != 0 {
		t.Fatalf("untraced lazy Collect allocates %v times per cycle, want 0", avg)
	}
}

// TestCollectAllocBoundUntracedParallel pins the parallel mark phase's
// per-cycle allocation budget at exactly one per worker: the `go`
// statement spawning it (a persistent pool would save that alloc but
// leak blocked goroutines from every dropped World). Anything above the
// spawn cost — closures, WaitGroups, tracing residue — fails.
func TestCollectAllocBoundUntracedParallel(t *testing.T) {
	const workers = 2
	w := newWorld(t, Config{GCDivisor: -1, MarkWorkers: workers, LazySweep: true})
	data := addData(t, w, "data", 0x2000, 4096)
	churn(t, w, data, 0x2000, 64)
	w.Collect()
	w.Collect()
	w.FinishSweep()
	avg := testing.AllocsPerRun(10, func() {
		w.Collect()
		w.FinishSweep()
	})
	if avg > workers {
		t.Fatalf("untraced parallel Collect allocates %v times per cycle, want <= %d (one spawn per worker)", avg, workers)
	}
}

// TestTracingDifferential asserts observability changes nothing it
// observes: the same workload in a traced world (ring buffer + gctrace
// sink attached) and an untraced one yields identical allocation
// addresses and identical CollectionStats up to timing.
func TestTracingDifferential(t *testing.T) {
	run := func(traced bool) ([]mem.Addr, []CollectionStats) {
		w := newWorld(t, Config{GCDivisor: -1})
		if traced {
			w.EnableTracing(0)
			w.SetGCTrace(&bytes.Buffer{})
		}
		data := addData(t, w, "data", 0x2000, 4096)
		var stats []CollectionStats
		var addrs []mem.Addr
		for round := 0; round < 3; round++ {
			addrs = append(addrs, churn(t, w, data, 0x2000, 48)...)
			stats = append(stats, w.Collect())
		}
		return addrs, stats
	}
	plainAddrs, plainStats := run(false)
	tracedAddrs, tracedStats := run(true)
	if len(plainAddrs) != len(tracedAddrs) {
		t.Fatalf("allocation counts diverge: %d vs %d", len(plainAddrs), len(tracedAddrs))
	}
	for i := range plainAddrs {
		if plainAddrs[i] != tracedAddrs[i] {
			t.Fatalf("allocation %d diverges: %#x untraced, %#x traced", i, plainAddrs[i], tracedAddrs[i])
		}
	}
	for i := range plainStats {
		a, b := plainStats[i], tracedStats[i]
		a.Duration, b.Duration = 0, 0
		a.PauseMarkNs, b.PauseMarkNs = 0, 0
		a.PauseSweepNs, b.PauseSweepNs = 0, 0
		if a != b {
			t.Fatalf("cycle %d stats diverge:\nuntraced %+v\ntraced   %+v", i, a, b)
		}
	}
}

// TestTraceEventOrdering checks a full collection emits its phase spans
// in order with consistent arguments.
func TestTraceEventOrdering(t *testing.T) {
	w := newWorld(t, Config{GCDivisor: -1})
	r := w.EnableTracing(0)
	data := addData(t, w, "data", 0x2000, 4096)
	churn(t, w, data, 0x2000, 32)
	st := w.Collect()

	phases := map[trace.Kind]bool{
		trace.EvCycleBegin: true, trace.EvMarkBegin: true, trace.EvMarkEnd: true,
		trace.EvSweepBegin: true, trace.EvSweepEnd: true, trace.EvCycleEnd: true,
	}
	want := []trace.Kind{
		trace.EvCycleBegin, trace.EvMarkBegin, trace.EvMarkEnd,
		trace.EvSweepBegin, trace.EvSweepEnd, trace.EvCycleEnd,
	}
	got := kindSeq(r, phases)
	if len(got) != len(want) {
		t.Fatalf("phase events = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("phase events = %v, want %v", got, want)
		}
	}
	for _, ev := range r.Events() {
		switch ev.Kind {
		case trace.EvCycleBegin:
			if ev.A0 != 1 || ev.A2 != 0 {
				t.Fatalf("cycle_begin args = %+v, want cycle 1 kind 0", ev)
			}
		case trace.EvMarkEnd:
			if uint64(ev.A0) != st.Mark.ObjectsMarked || uint64(ev.A1) != st.Mark.BytesMarked {
				t.Fatalf("mark_end args = %+v, stats %+v", ev, st.Mark)
			}
		case trace.EvSweepEnd:
			if uint64(ev.A0) != st.Sweep.ObjectsFreed || uint64(ev.A1) != st.Sweep.BytesFreed {
				t.Fatalf("sweep_end args = %+v, stats %+v", ev, st.Sweep)
			}
		case trace.EvCycleEnd:
			if uint64(ev.A1) != st.Sweep.ObjectsLive {
				t.Fatalf("cycle_end args = %+v, stats %+v", ev, st.Sweep)
			}
		}
	}
	// Timestamps never decrease within the surviving window.
	evs := r.Events()
	for i := 1; i < len(evs); i++ {
		if evs[i].TimeNs < evs[i-1].TimeNs {
			t.Fatalf("timestamps regress: %d then %d", evs[i-1].TimeNs, evs[i].TimeNs)
		}
	}
}

// TestTraceWorkerEvents checks parallel cycles report per-worker totals
// that sum to the cycle's.
func TestTraceWorkerEvents(t *testing.T) {
	w := newWorld(t, Config{GCDivisor: -1, MarkWorkers: 4})
	r := w.EnableTracing(0)
	data := addData(t, w, "data", 0x2000, 4096)
	churn(t, w, data, 0x2000, 64)
	st := w.Collect()
	var workers, objects uint64
	for _, ev := range r.Events() {
		if ev.Kind == trace.EvWorkerMark {
			workers++
			objects += uint64(ev.A1)
		}
	}
	if workers != 4 {
		t.Fatalf("worker_mark events = %d, want 4", workers)
	}
	if objects != st.Mark.ObjectsMarked {
		t.Fatalf("worker totals sum to %d objects, cycle marked %d", objects, st.Mark.ObjectsMarked)
	}
}

// TestTraceMinorAndIncrementalCycles checks the cycle-kind argument
// convention (0 full, 1 minor, 2 incremental) and the incremental step
// events.
func TestTraceMinorAndIncrementalCycles(t *testing.T) {
	w := newWorld(t, Config{GCDivisor: -1, Generational: true})
	r := w.EnableTracing(0)
	data := addData(t, w, "data", 0x2000, 4096)
	churn(t, w, data, 0x2000, 32)
	w.CollectMinor()
	begins := 0
	for _, ev := range r.Events() {
		if ev.Kind == trace.EvCycleBegin {
			begins++
			if ev.A2 != 1 {
				t.Fatalf("minor cycle_begin kind = %d, want 1", ev.A2)
			}
		}
	}
	if begins != 1 {
		t.Fatalf("cycle_begin events = %d, want 1", begins)
	}

	wi := newWorld(t, Config{GCDivisor: -1, Incremental: true})
	ri := wi.EnableTracing(0)
	datai := addData(t, wi, "data", 0x2000, 4096)
	churn(t, wi, datai, 0x2000, 32)
	if err := wi.StartIncrementalCycle(); err != nil {
		t.Fatal(err)
	}
	for !wi.IncrementalStep(8) {
	}
	st := wi.FinishIncrementalCycle()
	if !st.Incremental || st.Steps == 0 {
		t.Fatalf("incremental stats = %+v", st)
	}
	if got := countKind(ri, trace.EvIncStep); got != st.Steps {
		t.Fatalf("inc_step events = %d, stats.Steps = %d", got, st.Steps)
	}
	for _, ev := range ri.Events() {
		if ev.Kind == trace.EvCycleBegin && ev.A2 != 2 {
			t.Fatalf("incremental cycle_begin kind = %d, want 2", ev.A2)
		}
	}
}

// TestTraceBlacklistAndAllocTrigger checks the marker's blacklist
// additions and allocation-triggered collections reach the trace and
// the gc_alloc_triggered counter.
func TestTraceBlacklistAndAllocTrigger(t *testing.T) {
	w := newWorld(t, Config{
		Blacklisting: BlacklistDense, GCDivisor: 4,
		InitialHeapBytes: 1 << 16, ReserveHeapBytes: 1 << 20,
	})
	r := w.EnableTracing(0)
	data := addData(t, w, "data", 0x2000, 4096)
	// A near-heap non-pointer: one page past the committed heap.
	hs := w.Heap.Stats()
	data.Store(0x2000, mem.Word(uint32(w.cfg.HeapBase)+uint32(hs.HeapBytes)+mem.PageBytes))
	w.Collect()
	if countKind(r, trace.EvBlacklistPage) == 0 {
		t.Fatal("no blacklist_page events from a near-heap false reference")
	}

	// Allocate until the divisor triggers a collection on its own.
	before := w.Collections()
	for i := 0; i < 20000 && w.Collections() == before; i++ {
		if _, err := w.Allocate(4, false); err != nil {
			t.Fatal(err)
		}
	}
	if w.Collections() == before {
		t.Fatal("allocation never triggered a collection")
	}
	if countKind(r, trace.EvAllocTrigger) == 0 {
		t.Fatal("no alloc_trigger events from a triggered collection")
	}
	if v, ok := w.Metrics().Value("gc_alloc_triggered"); !ok || v < 1 {
		t.Fatalf("gc_alloc_triggered = %d (ok=%v), want >= 1", v, ok)
	}
}

// TestMetricsMatchCollectionStats asserts the registry's counters are
// exactly the running sums of the per-cycle CollectionStats, and the
// gauges mirror the allocator — CollectionStats is a per-cycle view of
// the same accounting the registry accumulates.
func TestMetricsMatchCollectionStats(t *testing.T) {
	w := newWorld(t, Config{GCDivisor: -1})
	data := addData(t, w, "data", 0x2000, 4096)
	var sum struct {
		cycles, objectsMarked, bytesMarked uint64
		objectsSwept, bytesSwept           uint64
		pauseNs, markPauseNs, sweepNs      uint64
	}
	w.SetCollectionHook(func(st CollectionStats) {
		sum.cycles++
		sum.objectsMarked += st.Mark.ObjectsMarked
		sum.bytesMarked += st.Mark.BytesMarked
		sum.objectsSwept += st.Sweep.ObjectsFreed
		sum.bytesSwept += st.Sweep.BytesFreed
		sum.pauseNs += uint64(st.Duration.Nanoseconds())
		sum.markPauseNs += uint64(st.PauseMarkNs)
		sum.sweepNs += uint64(st.PauseSweepNs)
	})
	for round := 0; round < 4; round++ {
		churn(t, w, data, 0x2000, 40)
		w.Collect()
	}
	reg := w.Metrics()
	check := func(name string, want uint64) {
		t.Helper()
		got, ok := reg.Value(name)
		if !ok {
			t.Fatalf("metric %q not registered", name)
		}
		if uint64(got) != want {
			t.Fatalf("%s = %d, hook sum = %d", name, got, want)
		}
	}
	check("gc_cycles", sum.cycles)
	check("objects_marked", sum.objectsMarked)
	check("bytes_marked", sum.bytesMarked)
	check("objects_swept", sum.objectsSwept)
	check("bytes_swept", sum.bytesSwept)
	check("pause_ns", sum.pauseNs)
	check("mark_pause_ns", sum.markPauseNs)
	check("sweep_pause_ns", sum.sweepNs)

	hs := w.Heap.Stats()
	check("heap_bytes", uint64(hs.HeapBytes))
	check("live_bytes", hs.BytesLive)
	check("live_objects", hs.ObjectsLive)
	check("bytes_allocated", hs.BytesAllocated)
	check("objects_allocated", hs.ObjectsAllocated)
	check("mark_workers", 1)

	// The pause histograms see every cycle: their counts and sums are
	// the same accounting as the pause counters.
	markHist := reg.Histogram("mark_pause_ns_hist")
	sweepHist := reg.Histogram("sweep_pause_ns_hist")
	if markHist.Count() != sum.cycles || markHist.Sum() != sum.markPauseNs {
		t.Fatalf("mark hist count=%d sum=%d, cycles=%d markPauseNs=%d",
			markHist.Count(), markHist.Sum(), sum.cycles, sum.markPauseNs)
	}
	if sweepHist.Count() != sum.cycles || sweepHist.Sum() != sum.sweepNs {
		t.Fatalf("sweep hist count=%d sum=%d, cycles=%d sweepNs=%d",
			sweepHist.Count(), sweepHist.Sum(), sum.cycles, sum.sweepNs)
	}
}

// TestMetricsMatchMutatorStats extends the running-sums invariant to
// the concurrent-mutator counters: stw_stops/stw_pause_ns accumulate
// exactly one safepoint stop per collection of a world with handles
// attached, and the cache_refill*/cache_flush_slots counters are the
// sums of every handle's MutatorStats.
func TestMetricsMatchMutatorStats(t *testing.T) {
	w := newWorld(t, Config{GCDivisor: -1, LazySweep: true})
	data := addData(t, w, "data", 0x2000, 4096)
	var stops, stopNs uint64
	w.SetCollectionHook(func(st CollectionStats) {
		stops++ // each collection stops the attached handles exactly once
		stopNs += uint64(st.PauseStopNs)
	})
	const nMut = 3
	muts := make([]*Mutator, nMut)
	for g := range muts {
		muts[g] = w.NewMutator()
	}
	// Single-goroutine driving keeps this deterministic; handles are
	// per-goroutine, not thread-safe, and that is all this test needs.
	for round := 0; round < 3; round++ {
		for g, m := range muts {
			for i := 0; i < 40; i++ {
				slot := mem.Addr(0x2000 + 4*g)
				if i == 0 {
					if _, err := m.AllocateRooted(data, slot, 2, false); err != nil {
						t.Fatal(err)
					}
				} else if _, err := m.Allocate(2, false); err != nil {
					t.Fatal(err)
				}
			}
		}
		w.Collect()
	}
	var refills, refillSlots, flushSlots uint64
	for _, m := range muts {
		s := m.Stats()
		refills += s.Refills
		refillSlots += s.RunSlots
		flushSlots += s.FlushedSlots
	}
	reg := w.Metrics()
	check := func(name string, want uint64) {
		t.Helper()
		got, ok := reg.Value(name)
		if !ok {
			t.Fatalf("metric %q not registered", name)
		}
		if uint64(got) != want {
			t.Fatalf("%s = %d, want %d", name, got, want)
		}
	}
	if stops == 0 || refills == 0 {
		t.Fatalf("workload exercised nothing: %d stops, %d refills", stops, refills)
	}
	check("stw_stops", stops)
	check("stw_pause_ns", stopNs)
	check("cache_refills", refills)
	check("cache_refill_slots", refillSlots)
	check("cache_flush_slots", flushSlots)
	if h := reg.Histogram("stop_pause_ns_hist"); h.Count() != stops || h.Sum() != stopNs {
		t.Fatalf("stop hist count=%d sum=%d, want %d stops totalling %d ns",
			h.Count(), h.Sum(), stops, stopNs)
	}
}

// TestGCTraceLine checks the one-line-per-cycle text mode's shape.
func TestGCTraceLine(t *testing.T) {
	w := newWorld(t, Config{GCDivisor: -1})
	var buf bytes.Buffer
	w.SetGCTrace(&buf)
	data := addData(t, w, "data", 0x2000, 4096)
	churn(t, w, data, 0x2000, 32)
	w.Collect()
	w.Collect()
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("gctrace lines = %d, want 2:\n%s", len(lines), buf.String())
	}
	re := regexp.MustCompile(`^gc (\d+) @\d+\.\d{3}s full: \d+\.\d{2}ms pause \(mark \d+\.\d{2}ms, sweep \d+\.\d{2}ms\): \d+ live \(\d+ KiB\), \d+ freed, heap \d+ KiB, \d+ blacklisted$`)
	for i, line := range lines {
		m := re.FindSubmatch(line)
		if m == nil {
			t.Fatalf("gctrace line %d does not match: %q", i, line)
		}
	}
	if !bytes.HasPrefix(lines[0], []byte("gc 1 ")) || !bytes.HasPrefix(lines[1], []byte("gc 2 ")) {
		t.Fatalf("gctrace cycle numbers wrong:\n%s", buf.String())
	}
	// Detaching stops the stream.
	w.SetGCTrace(nil)
	n := buf.Len()
	w.Collect()
	if buf.Len() != n {
		t.Fatal("gctrace kept writing after SetGCTrace(nil)")
	}
}

// TestGCTraceSummary checks the cumulative distribution line built
// from the pause histograms: its shape, and that the quantiles it
// prints never shrink below zero or exceed the recorded maximum.
func TestGCTraceSummary(t *testing.T) {
	w := newWorld(t, Config{GCDivisor: -1})
	data := addData(t, w, "data", 0x2000, 4096)
	for i := 0; i < 3; i++ {
		churn(t, w, data, 0x2000, 32)
		w.Collect()
	}
	line := w.GCTraceSummary()
	re := regexp.MustCompile(`^gc summary: 3 cycles: mark p50 \d+\.\d{2}ms p95 \d+\.\d{2}ms max \d+\.\d{2}ms; sweep p50 \d+\.\d{2}ms p95 \d+\.\d{2}ms max \d+\.\d{2}ms; stop 0 stops p50 0\.00ms p95 0\.00ms max 0\.00ms$`)
	if !re.MatchString(line) {
		t.Fatalf("summary does not match: %q", line)
	}
	h := w.Metrics().Histogram("mark_pause_ns_hist")
	if h.Quantile(0.5) > h.Quantile(0.95) || h.Quantile(0.95) > h.Max() {
		t.Fatalf("quantiles disordered: p50=%d p95=%d max=%d",
			h.Quantile(0.5), h.Quantile(0.95), h.Max())
	}
}

// TestTraceLazySweepDrain checks deferred sweeps report their drains.
func TestTraceLazySweepDrain(t *testing.T) {
	w := newWorld(t, Config{GCDivisor: -1, LazySweep: true})
	r := w.EnableTracing(0)
	data := addData(t, w, "data", 0x2000, 4096)
	churn(t, w, data, 0x2000, 64)
	st := w.Collect()
	if st.SweepDeferredBlocks == 0 {
		t.Skip("workload produced no mixed blocks to defer")
	}
	w.FinishSweep()
	if got := countKind(r, trace.EvSweepDrain); got != st.SweepDeferredBlocks {
		t.Fatalf("sweep_drain events = %d, deferred blocks = %d", got, st.SweepDeferredBlocks)
	}
}
