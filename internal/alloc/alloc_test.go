package alloc

import (
	"testing"
	"testing/quick"

	"repro/internal/blacklist"
	"repro/internal/mem"
	"repro/internal/simrand"
)

const testHeapBase = 0x400000

func newTestAllocator(t *testing.T, cfg Config) (*mem.AddressSpace, *Allocator) {
	t.Helper()
	if cfg.HeapBase == 0 {
		cfg.HeapBase = testHeapBase
	}
	if cfg.InitialBytes == 0 {
		cfg.InitialBytes = 64 * mem.PageBytes
	}
	if cfg.ReserveBytes == 0 {
		cfg.ReserveBytes = 1024 * mem.PageBytes
	}
	space := mem.NewAddressSpace()
	a, err := New(space, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return space, a
}

func mustAlloc(t *testing.T, a *Allocator, words int, atomic bool) mem.Addr {
	t.Helper()
	p, err := a.Alloc(words, atomic)
	if err == ErrNeedMemory {
		if err := a.Expand(words * mem.WordBytes); err != nil {
			t.Fatalf("expand: %v", err)
		}
		p, err = a.Alloc(words, atomic)
	}
	if err != nil {
		t.Fatalf("Alloc(%d): %v", words, err)
	}
	return p
}

func TestClassForMapping(t *testing.T) {
	prev := 0
	for _, w := range classWords {
		if w <= prev {
			t.Fatalf("classWords not increasing at %d", w)
		}
		prev = w
	}
	for req := 1; req <= MaxSmallWords; req++ {
		c, w := ClassFor(req)
		if w < req {
			t.Fatalf("ClassFor(%d) rounded down to %d", req, w)
		}
		if c > 0 && classWords[c-1] >= req {
			t.Fatalf("ClassFor(%d) not minimal: class %d, prev fits", req, c)
		}
	}
	if !IsLarge(MaxSmallWords+1) || IsLarge(MaxSmallWords) {
		t.Fatal("IsLarge boundary wrong")
	}
}

func TestClassForPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ClassFor(0) did not panic")
		}
	}()
	ClassFor(0)
}

func TestNewValidation(t *testing.T) {
	space := mem.NewAddressSpace()
	if _, err := New(space, Config{HeapBase: 0x400001, InitialBytes: 4096, ReserveBytes: 8192}); err == nil {
		t.Error("unaligned heap base accepted")
	}
	if _, err := New(space, Config{HeapBase: 0x400000, InitialBytes: 8192, ReserveBytes: 4096}); err == nil {
		t.Error("initial > reserve accepted")
	}
}

func TestAllocBasics(t *testing.T) {
	_, a := newTestAllocator(t, Config{})
	p, err := a.Alloc(1, false)
	if err != nil {
		t.Fatal(err)
	}
	if p < a.Base() || p >= a.Limit() {
		t.Fatalf("object %#x outside heap", uint32(p))
	}
	if !mem.WordAligned(p) {
		t.Fatalf("object %#x unaligned", uint32(p))
	}
	// Objects are delivered zeroed.
	w, err := a.Seg().Load(p)
	if err != nil || w != 0 {
		t.Fatalf("object not zeroed: %v %v", w, err)
	}
	if _, err := a.Alloc(0, false); err == nil {
		t.Error("Alloc(0) should fail")
	}
	st := a.Stats()
	if st.ObjectsAllocated != 1 || st.BytesAllocated != 4 || st.BytesSinceGC != 4 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestObjectsDisjoint(t *testing.T) {
	_, a := newTestAllocator(t, Config{})
	type ext struct{ lo, hi mem.Addr }
	var exts []ext
	rng := simrand.New(1)
	for i := 0; i < 500; i++ {
		words := 1 + rng.Intn(40)
		p := mustAlloc(t, a, words, false)
		_, w := ClassFor(words)
		e := ext{p, p + mem.Addr(w*mem.WordBytes)}
		for _, o := range exts {
			if e.lo < o.hi && o.lo < e.hi {
				t.Fatalf("objects overlap: [%#x,%#x) and [%#x,%#x)",
					uint32(e.lo), uint32(e.hi), uint32(o.lo), uint32(o.hi))
			}
		}
		exts = append(exts, e)
	}
}

func TestFindObjectSmall(t *testing.T) {
	_, a := newTestAllocator(t, Config{})
	p := mustAlloc(t, a, 4, false) // rounds to a 4-word object
	// Base pointer valid in both modes.
	for _, interior := range []bool{false, true} {
		base, ok := a.FindObject(p, interior)
		if !ok || base != p {
			t.Fatalf("FindObject(base, %v) = %#x, %v", interior, uint32(base), ok)
		}
	}
	// Interior pointer valid only in interior mode.
	if _, ok := a.FindObject(p+4, false); ok {
		t.Error("interior pointer accepted in base-only mode")
	}
	if base, ok := a.FindObject(p+4, true); !ok || base != p {
		t.Error("interior pointer rejected in interior mode")
	}
	// Unaligned interior byte address valid in interior mode.
	if base, ok := a.FindObject(p+5, true); !ok || base != p {
		t.Error("unaligned interior pointer rejected")
	}
	// One past the end is not in the object; it may be the next slot's
	// base, which is unallocated here.
	if _, ok := a.FindObject(p+16, true); ok {
		t.Error("address past object accepted (next slot unallocated)")
	}
}

func TestFindObjectFreeSlotInvalid(t *testing.T) {
	_, a := newTestAllocator(t, Config{})
	p := mustAlloc(t, a, 2, false)
	q := mustAlloc(t, a, 2, false)
	if err := a.Free(q); err != nil {
		t.Fatal(err)
	}
	if _, ok := a.FindObject(q, true); ok {
		t.Error("freed slot accepted as valid object")
	}
	if _, ok := a.FindObject(p, true); !ok {
		t.Error("live object rejected")
	}
}

func TestFindObjectOutsideHeap(t *testing.T) {
	_, a := newTestAllocator(t, Config{})
	if _, ok := a.FindObject(0x1000, true); ok {
		t.Error("address below heap accepted")
	}
	if _, ok := a.FindObject(a.Limit(), true); ok {
		t.Error("address past committed heap accepted")
	}
	if !a.InVicinity(a.Limit()) {
		t.Error("reserved-but-uncommitted address should be in vicinity")
	}
	if a.InVicinity(a.Base() + mem.Addr(a.Seg().ReservedSize())) {
		t.Error("address past reservation should not be in vicinity")
	}
}

func TestFindObjectBlockTailWaste(t *testing.T) {
	_, a := newTestAllocator(t, Config{})
	// 170-word class: 6 slots of 170 words = 1020 words; 4 words waste.
	p := mustAlloc(t, a, 170, false)
	blockBase := p &^ (mem.PageBytes - 1)
	waste := blockBase + mem.Addr(6*170*mem.WordBytes)
	if _, ok := a.FindObject(waste, true); ok {
		t.Error("block-tail waste accepted as object")
	}
}

func TestLargeObjects(t *testing.T) {
	_, a := newTestAllocator(t, Config{})
	words := 3 * mem.PageWords // three blocks
	p := mustAlloc(t, a, words, false)
	if p%mem.PageBytes != 0 {
		t.Fatalf("large object %#x not block aligned", uint32(p))
	}
	// Base valid in both modes; deep interior only in interior mode.
	if base, ok := a.FindObject(p, false); !ok || base != p {
		t.Fatal("large base rejected")
	}
	inner := p + mem.Addr(2*mem.PageBytes+100)
	if base, ok := a.FindObject(inner, true); !ok || base != p {
		t.Fatal("pointer into continuation block rejected in interior mode")
	}
	if _, ok := a.FindObject(inner, false); ok {
		t.Fatal("continuation pointer accepted in base-only mode")
	}
	// Past the object's words but within the span's last block: invalid.
	if ws, _ := a.ObjectSpan(p); ws != words {
		t.Fatalf("ObjectSpan = %d", ws)
	}
	past := p + mem.Addr(words*mem.WordBytes)
	if _, ok := a.FindObject(past, true); ok {
		t.Error("address past large object accepted")
	}
}

func TestMarkAndMarked(t *testing.T) {
	_, a := newTestAllocator(t, Config{})
	p := mustAlloc(t, a, 2, false)
	q := mustAlloc(t, a, 600*1024/4, false) // large
	for _, obj := range []mem.Addr{p, q} {
		if a.Marked(obj) {
			t.Fatalf("fresh object %#x marked", uint32(obj))
		}
		if !a.Mark(obj) {
			t.Fatalf("first Mark(%#x) returned false", uint32(obj))
		}
		if a.Mark(obj) {
			t.Fatalf("second Mark(%#x) returned true", uint32(obj))
		}
		if !a.Marked(obj) {
			t.Fatalf("object %#x not marked", uint32(obj))
		}
	}
}

func TestSweepFreesUnmarked(t *testing.T) {
	_, a := newTestAllocator(t, Config{})
	keep := mustAlloc(t, a, 2, false)
	drop := mustAlloc(t, a, 2, false)
	big := mustAlloc(t, a, 2048, false)
	a.Mark(keep)
	r := a.Sweep()
	if r.ObjectsLive != 1 || r.ObjectsFreed != 2 {
		t.Fatalf("sweep result = %+v", r)
	}
	if !a.IsAllocated(keep) {
		t.Error("marked object swept")
	}
	if a.IsAllocated(drop) || a.IsAllocated(big) {
		t.Error("unmarked object survived sweep")
	}
	// Marks are cleared by sweep, so an immediate second sweep frees
	// the survivor too.
	r2 := a.Sweep()
	if r2.ObjectsFreed != 1 || r2.ObjectsLive != 0 {
		t.Fatalf("second sweep = %+v", r2)
	}
}

func TestSweepRebuildsFreeLists(t *testing.T) {
	_, a := newTestAllocator(t, Config{})
	var objs []mem.Addr
	for i := 0; i < 100; i++ {
		objs = append(objs, mustAlloc(t, a, 2, false))
	}
	// Keep every other object.
	for i := 0; i < len(objs); i += 2 {
		a.Mark(objs[i])
	}
	a.Sweep()
	// New allocations reuse the freed slots (no heap growth).
	before := a.Stats().HeapBytes
	seen := map[mem.Addr]bool{}
	for i := 1; i < len(objs); i += 2 {
		seen[objs[i]] = true
	}
	reused := 0
	for i := 0; i < 50; i++ {
		p := mustAlloc(t, a, 2, false)
		if seen[p] {
			reused++
		}
	}
	if reused != 50 {
		t.Fatalf("only %d/50 allocations reused freed slots", reused)
	}
	if a.Stats().HeapBytes != before {
		t.Fatal("heap grew despite free slots")
	}
}

func TestSweepReleasesEmptyBlocksAndCoalesces(t *testing.T) {
	_, a := newTestAllocator(t, Config{InitialBytes: 16 * mem.PageBytes})
	// Fill several blocks with 1-word objects, mark none.
	for i := 0; i < 5000; i++ {
		mustAlloc(t, a, 1, false)
	}
	ded := a.Stats().BlocksDedicated
	if ded < 4 {
		t.Fatalf("expected several dedicated blocks, got %d", ded)
	}
	a.Sweep()
	st := a.Stats()
	if st.BlocksDedicated != 0 {
		t.Fatalf("%d blocks still dedicated after sweeping empty heap", st.BlocksDedicated)
	}
	// Address-ordered policy coalesces everything back to one span.
	if spans := a.FreeSpans(); len(spans) != 1 {
		t.Fatalf("free spans not coalesced: %v", spans)
	}
}

func TestSweepZeroesFreedSlots(t *testing.T) {
	_, a := newTestAllocator(t, Config{})
	p := mustAlloc(t, a, 4, false)
	for i := 0; i < 4; i++ {
		a.Seg().Store(p+mem.Addr(4*i), 0xDEADBEEF)
	}
	keeper := mustAlloc(t, a, 4, false) // keeps the block dedicated
	a.Mark(keeper)
	a.Sweep()
	// Allocate until we get p back; its body must be zero.
	for i := 0; i < 1000; i++ {
		q := mustAlloc(t, a, 4, false)
		if q != p {
			continue
		}
		for w := 0; w < 4; w++ {
			v, _ := a.Seg().Load(q + mem.Addr(4*w))
			if v != 0 {
				t.Fatalf("recycled object word %d = %#x", w, uint32(v))
			}
		}
		return
	}
	t.Fatal("slot never recycled")
}

func TestCountMarkedAndClearMarks(t *testing.T) {
	_, a := newTestAllocator(t, Config{})
	p := mustAlloc(t, a, 2, false)
	mustAlloc(t, a, 2, false)
	a.Mark(p)
	n, bytes := a.CountMarked()
	if n != 1 || bytes != 8 {
		t.Fatalf("CountMarked = %d, %d", n, bytes)
	}
	a.ClearMarks()
	if n, _ := a.CountMarked(); n != 0 {
		t.Fatal("ClearMarks left marks")
	}
	if !a.IsAllocated(p) {
		t.Fatal("ClearMarks should not free")
	}
}

func TestExpandAndExhaustion(t *testing.T) {
	_, a := newTestAllocator(t, Config{
		InitialBytes:    2 * mem.PageBytes,
		ReserveBytes:    4 * mem.PageBytes,
		ExpandIncrement: mem.PageBytes,
	})
	if !a.CanExpand() {
		t.Fatal("should be expandable")
	}
	if err := a.Expand(mem.PageBytes); err != nil {
		t.Fatal(err)
	}
	// Expansion is clamped to the reservation.
	if err := a.Expand(100 * mem.PageBytes); err != nil {
		t.Fatal(err)
	}
	if a.CanExpand() {
		t.Fatal("reservation should be exhausted")
	}
	if err := a.Expand(mem.PageBytes); err != ErrHeapExhausted {
		t.Fatalf("expected ErrHeapExhausted, got %v", err)
	}
}

func TestAllocNeedsMemory(t *testing.T) {
	_, a := newTestAllocator(t, Config{
		InitialBytes: mem.PageBytes,
		ReserveBytes: mem.PageBytes,
	})
	// One block: a 2-block object can never fit.
	if _, err := a.Alloc(2*mem.PageWords, false); err != ErrNeedMemory {
		t.Fatalf("want ErrNeedMemory, got %v", err)
	}
	// Fill the single block, then the next small alloc needs memory.
	for i := 0; i < mem.PageWords; i++ {
		if _, err := a.Alloc(1, false); err != nil {
			t.Fatalf("alloc %d: %v", i, err)
		}
	}
	if _, err := a.Alloc(1, false); err != ErrNeedMemory {
		t.Fatalf("want ErrNeedMemory when full, got %v", err)
	}
}

func TestBlacklistedBlockNotDedicated(t *testing.T) {
	bl, err := blacklist.NewDense(testHeapBase, testHeapBase+1024*mem.PageBytes, mem.PageBytes)
	if err != nil {
		t.Fatal(err)
	}
	_, a := newTestAllocator(t, Config{Blacklist: bl, InitialBytes: 8 * mem.PageBytes})
	// Blacklist the first three heap pages.
	for i := 0; i < 3; i++ {
		bl.Add(testHeapBase + mem.Addr(i*mem.PageBytes))
	}
	p := mustAlloc(t, a, 1, false)
	if p < testHeapBase+3*mem.PageBytes {
		t.Fatalf("object %#x placed on blacklisted page", uint32(p))
	}
	if a.Stats().BlacklistSkips == 0 {
		t.Error("no blacklist skips recorded")
	}
}

func TestAtomicSmallMayUseBlacklistedPages(t *testing.T) {
	bl, _ := blacklist.NewDense(testHeapBase, testHeapBase+1024*mem.PageBytes, mem.PageBytes)
	_, a := newTestAllocator(t, Config{
		Blacklist:                bl,
		InitialBytes:             8 * mem.PageBytes,
		AllowAtomicOnBlacklisted: true,
		AtomicBlacklistMaxWords:  16,
	})
	bl.Add(testHeapBase)
	// A small atomic object may use the blacklisted first page.
	p := mustAlloc(t, a, 2, true)
	if mem.PageOf(p) != mem.PageOf(testHeapBase) {
		t.Fatalf("small atomic object at %#x did not use blacklisted page", uint32(p))
	}
	// A pointer-containing object may not.
	q := mustAlloc(t, a, 2, false)
	if mem.PageOf(q) == mem.PageOf(testHeapBase) {
		t.Fatal("composite object placed on blacklisted page")
	}
	// A big atomic object (beyond the threshold) may not either.
	r := mustAlloc(t, a, 64, true)
	if mem.PageOf(r) == mem.PageOf(testHeapBase) {
		t.Fatal("large atomic object placed on blacklisted page")
	}
}

func TestLargeObjectBlacklistInteriorPolicy(t *testing.T) {
	mk := func(interior bool) (*blacklist.Dense, *Allocator) {
		bl, _ := blacklist.NewDense(testHeapBase, testHeapBase+1024*mem.PageBytes, mem.PageBytes)
		_, a := newTestAllocator(t, Config{
			Blacklist:        bl,
			InteriorPointers: interior,
			InitialBytes:     16 * mem.PageBytes,
		})
		// Blacklist page 2 (middle of the natural first placement).
		bl.Add(testHeapBase + 2*mem.PageBytes)
		return bl, a
	}
	// Interior pointers recognised: a 4-block object must avoid the span
	// containing page 2.
	_, a := mk(true)
	p := mustAlloc(t, a, 4*mem.PageWords, false)
	if p <= testHeapBase+2*mem.PageBytes && testHeapBase+2*mem.PageBytes < p+4*mem.PageBytes {
		t.Fatalf("interior mode: object [%#x,+4 blocks) spans blacklisted page", uint32(p))
	}
	// Base-only mode: only the first page matters, so placement at page 0
	// spanning page 2 is fine.
	_, a2 := mk(false)
	q := mustAlloc(t, a2, 4*mem.PageWords, false)
	if q != testHeapBase {
		t.Fatalf("base-only mode: object at %#x, expected %#x", uint32(q), uint32(testHeapBase))
	}
}

func TestSkipPageBoundarySlot(t *testing.T) {
	_, a := newTestAllocator(t, Config{SkipPageBoundarySlot: true})
	for i := 0; i < 3000; i++ {
		p := mustAlloc(t, a, 1, false)
		if p%mem.PageBytes == 0 {
			t.Fatalf("1-word object at page boundary %#x", uint32(p))
		}
	}
	// Larger classes are unaffected.
	found := false
	for i := 0; i < 100; i++ {
		if p := mustAlloc(t, a, 64, false); p%mem.PageBytes == 0 {
			found = true
		}
	}
	if !found {
		t.Error("64-word class should still use page-boundary slots")
	}
}

func TestFreeExplicit(t *testing.T) {
	_, a := newTestAllocator(t, Config{})
	p := mustAlloc(t, a, 2, false)
	if err := a.Free(p); err != nil {
		t.Fatal(err)
	}
	if a.IsAllocated(p) {
		t.Fatal("freed object still allocated")
	}
	if err := a.Free(p); err == nil {
		t.Fatal("double free not detected")
	}
	if err := a.Free(0x1234); err == nil {
		t.Fatal("free of non-heap address not detected")
	}
	big := mustAlloc(t, a, 4*mem.PageWords, false)
	if err := a.Free(big + 4); err == nil {
		t.Fatal("free of large-object interior not detected")
	}
	if err := a.Free(big); err != nil {
		t.Fatal(err)
	}
	if a.IsAllocated(big) {
		t.Fatal("freed large object still allocated")
	}
}

func TestLIFODoesNotCoalesce(t *testing.T) {
	_, a := newTestAllocator(t, Config{
		FreeBlocks:   LIFO,
		InitialBytes: 8 * mem.PageBytes,
		ReserveBytes: 8 * mem.PageBytes,
	})
	// Dedicate all 8 blocks via large allocations, then free them.
	var objs []mem.Addr
	for i := 0; i < 8; i++ {
		objs = append(objs, mustAlloc(t, a, mem.PageWords, false))
	}
	for _, p := range objs {
		if err := a.Free(p); err != nil {
			t.Fatal(err)
		}
	}
	if len(a.FreeSpans()) != 8 {
		t.Fatalf("LIFO coalesced: %v", a.FreeSpans())
	}
	if a.LargestFreeSpan() != 1 {
		t.Fatalf("LargestFreeSpan = %d", a.LargestFreeSpan())
	}
	// An 8-block request therefore fails even though 8 blocks are free.
	if _, err := a.Alloc(8*mem.PageWords, false); err != ErrNeedMemory {
		t.Fatalf("want ErrNeedMemory under LIFO fragmentation, got %v", err)
	}
}

func TestAddressOrderedSatisfiesLargeAfterChurn(t *testing.T) {
	_, a := newTestAllocator(t, Config{
		InitialBytes: 8 * mem.PageBytes,
		ReserveBytes: 8 * mem.PageBytes,
	})
	var objs []mem.Addr
	for i := 0; i < 8; i++ {
		objs = append(objs, mustAlloc(t, a, mem.PageWords, false))
	}
	for _, p := range objs {
		a.Free(p)
	}
	if _, err := a.Alloc(8*mem.PageWords, false); err != nil {
		t.Fatalf("address-ordered policy failed after churn: %v", err)
	}
}

func TestAtomicObjectSpan(t *testing.T) {
	_, a := newTestAllocator(t, Config{})
	p := mustAlloc(t, a, 3, true)
	w, atomic := a.ObjectSpan(p)
	if w != 3 || !atomic {
		t.Fatalf("ObjectSpan = %d, %v", w, atomic)
	}
	q := mustAlloc(t, a, 3, false)
	if _, atomic := a.ObjectSpan(q); atomic {
		t.Fatal("composite object reported atomic")
	}
	// Atomic and composite objects of one class come from different
	// blocks (separate free lists).
	if mem.PageOf(p) == mem.PageOf(q) {
		t.Fatal("atomic and composite objects share a block")
	}
}

// TestRandomChurnInvariants drives a random alloc/free/mark/sweep
// sequence and checks the core invariants after every step.
func TestRandomChurnInvariants(t *testing.T) {
	_, a := newTestAllocator(t, Config{InitialBytes: 32 * mem.PageBytes})
	rng := simrand.New(99)
	live := map[mem.Addr]int{} // base -> words
	for step := 0; step < 3000; step++ {
		switch op := rng.Intn(10); {
		case op < 6: // alloc
			words := 1 + rng.Intn(100)
			p, err := a.Alloc(words, rng.Bool(0.3))
			if err == ErrNeedMemory {
				if err := a.Expand(mem.PageBytes); err != nil {
					t.Fatal(err)
				}
				continue
			}
			if err != nil {
				t.Fatal(err)
			}
			if _, dup := live[p]; dup {
				t.Fatalf("step %d: address %#x double-allocated", step, uint32(p))
			}
			live[p] = words
		case op < 8: // free one
			for p := range live {
				if err := a.Free(p); err != nil {
					t.Fatalf("step %d: free: %v", step, err)
				}
				delete(live, p)
				break
			}
		default: // GC: mark everything we consider live, sweep
			for p := range live {
				a.Mark(p)
			}
			a.Sweep()
		}
	}
	// Final full check.
	for p, words := range live {
		base, ok := a.FindObject(p, false)
		if !ok || base != p {
			t.Fatalf("live object %#x lost", uint32(p))
		}
		if w, _ := a.ObjectSpan(p); w < words {
			t.Fatalf("object %#x shrank: %d < %d", uint32(p), w, words)
		}
	}
	for p := range live {
		a.Mark(p)
	}
	r := a.Sweep()
	if r.ObjectsLive != uint64(len(live)) {
		t.Fatalf("sweep live %d != tracked %d", r.ObjectsLive, len(live))
	}
}

// TestFindObjectConsistency: for any allocated object, every interior
// byte resolves to its base in interior mode; in base-only mode only the
// base does.
func TestFindObjectConsistency(t *testing.T) {
	_, a := newTestAllocator(t, Config{})
	rng := simrand.New(7)
	f := func(sizeSel uint16) bool {
		words := 1 + int(sizeSel)%MaxSmallWords
		p, err := a.Alloc(words, false)
		if err != nil {
			if a.Expand(mem.PageBytes<<4) != nil {
				return false
			}
			p, err = a.Alloc(words, false)
			if err != nil {
				return false
			}
		}
		_, w := ClassFor(words)
		for trial := 0; trial < 8; trial++ {
			off := mem.Addr(rng.Intn(w * mem.WordBytes))
			base, ok := a.FindObject(p+off, true)
			if !ok || base != p {
				return false
			}
			if off != 0 {
				if _, ok := a.FindObject(p+off, false); ok {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkAlloc2Words(b *testing.B) {
	space := mem.NewAddressSpace()
	a, err := New(space, Config{
		HeapBase:     testHeapBase,
		InitialBytes: 16 << 20,
		ReserveBytes: 64 << 20,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := a.Alloc(2, false); err != nil {
			b.StopTimer()
			a.Sweep() // frees everything (nothing marked)
			b.StartTimer()
		}
	}
}

func TestAllocDesperateUsesBlacklistedPages(t *testing.T) {
	bl, _ := blacklist.NewDense(testHeapBase, testHeapBase+8*mem.PageBytes, mem.PageBytes)
	_, a := newTestAllocator(t, Config{
		Blacklist:    bl,
		InitialBytes: 8 * mem.PageBytes,
		ReserveBytes: 8 * mem.PageBytes,
	})
	// Blacklist every page: ordinary allocation must fail...
	for i := 0; i < 8; i++ {
		bl.Add(testHeapBase + mem.Addr(i*mem.PageBytes))
	}
	if _, err := a.Alloc(2, false); err != ErrNeedMemory {
		t.Fatalf("want ErrNeedMemory, got %v", err)
	}
	// ...but the desperate path succeeds and counts itself.
	p, err := a.AllocDesperate(2, false)
	if err != nil {
		t.Fatal(err)
	}
	if !a.IsAllocated(p) {
		t.Fatal("desperate object not allocated")
	}
	if a.Stats().DesperateAllocs != 1 {
		t.Fatalf("DesperateAllocs = %d", a.Stats().DesperateAllocs)
	}
	// Subsequent allocations of the same class reuse the block without
	// further desperation.
	if _, err := a.Alloc(2, false); err != nil {
		t.Fatal(err)
	}
	if a.Stats().DesperateAllocs != 1 {
		t.Fatal("free-list reuse should not count as desperate")
	}
	// Large desperate allocation spanning blacklisted pages.
	big, err := a.AllocDesperate(2*mem.PageWords, false)
	if err != nil {
		t.Fatal(err)
	}
	if !a.IsAllocated(big) || a.Stats().DesperateAllocs != 2 {
		t.Fatalf("large desperate alloc wrong: %v", a.Stats())
	}
}
