// Package blacklist implements the paper's address blacklist
// (Boehm, PLDI 1993, section 3).
//
// During a collection, every value that looks as if it could become a
// valid heap address — but currently is not one — is recorded here. The
// allocator then refuses to begin allocating from blacklisted regions,
// so if the stray value is long-lived (the paper's worst case: constant
// static data scanned as a root), it can never pin a future object.
//
// The paper blacklists whole pages rather than individual addresses,
// "for reasons of performance and simplicity", and offers two
// representations: a bit array indexed by page number for a contiguous
// heap, and a hash table with one bit per entry for a discontinuous
// heap, where hash collisions simply blacklist a few extra pages. Both
// are implemented here, behind the List interface, plus a Disabled
// no-op used for the paper's "blacklisting off" measurement rows. The
// granule size is configurable so that page-level blacklisting can be
// compared against finer granularities (DESIGN.md, ablation notes).
//
// The paper also notes that "blacklisted values that are no longer
// found by a later collection may be removed from the list"; this aging
// is implemented by stamping entries with the collection cycle in which
// they were last seen (BeginCycle / Expire).
package blacklist

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"

	"repro/internal/mem"
)

// Stats counts blacklist activity. The paper's footnote 3 reports the
// corresponding bookkeeping overhead at well under 1% of collector time.
type Stats struct {
	Adds    uint64 // Add calls (false references seen near the heap)
	Hits    uint64 // Contains/ContainsRange queries that returned true
	Queries uint64 // total Contains/ContainsRange queries
	Expired uint64 // entries removed by Expire
}

// List is the interface between the marker (which adds near-heap false
// references) and the allocator (which avoids blacklisted regions).
type List interface {
	// Add blacklists the granule containing a.
	Add(a mem.Addr)
	// Contains reports whether the granule containing a is blacklisted.
	Contains(a mem.Addr) bool
	// ContainsRange reports whether any granule intersecting [lo, hi)
	// is blacklisted. The allocator uses this before dedicating a fresh
	// block span to a size class, and — when interior pointers are
	// recognised — before placing a large object across several pages.
	ContainsRange(lo, hi mem.Addr) bool
	// Len returns the number of currently blacklisted granules. For the
	// hashed form this counts occupied buckets, which may conflate
	// colliding granules, as in the paper.
	Len() int
	// Clear removes all entries.
	Clear()
	// BeginCycle advances the collection-cycle stamp; the marker calls
	// it at the start of each collection.
	BeginCycle()
	// Expire removes entries not re-added within maxAge cycles and
	// returns how many were removed.
	Expire(maxAge uint32) int
	// Stats returns accumulated counters.
	Stats() Stats
}

func checkGranule(granule uint32) error {
	if granule == 0 || granule&(granule-1) != 0 {
		return fmt.Errorf("blacklist: granule %d not a power of two", granule)
	}
	if granule < mem.WordBytes {
		return fmt.Errorf("blacklist: granule %d smaller than a word", granule)
	}
	return nil
}

// Dense is the bit-array form: one entry per granule of a contiguous
// address range, normally the heap's reserved region. Entries store the
// cycle in which they were last added (0 = clear), which makes aging a
// single comparison.
type Dense struct {
	granule  uint32
	shift    uint
	base     mem.Addr
	ngran    int
	stamps   []uint32
	gen      uint32
	count    int
	statsRec Stats
}

var _ List = (*Dense)(nil)

// NewDense creates a dense blacklist covering [base, limit) with the
// given granule size in bytes (a power of two, at least one word; the
// paper uses the 4096-byte page).
func NewDense(base, limit mem.Addr, granule uint32) (*Dense, error) {
	if err := checkGranule(granule); err != nil {
		return nil, err
	}
	if limit <= base {
		return nil, fmt.Errorf("blacklist: empty range [%#x,%#x)", uint32(base), uint32(limit))
	}
	shift := uint(bits.TrailingZeros32(granule))
	lo := uint32(base) >> shift
	hi := (uint32(limit-1) >> shift) + 1
	return &Dense{
		granule: granule,
		shift:   shift,
		base:    mem.Addr(lo << shift),
		ngran:   int(hi - lo),
		stamps:  make([]uint32, hi-lo),
		gen:     1,
	}, nil
}

func (d *Dense) index(a mem.Addr) (int, bool) {
	if a < d.base {
		return 0, false
	}
	i := int((uint32(a) - uint32(d.base)) >> d.shift)
	if i >= d.ngran {
		return 0, false
	}
	return i, true
}

// Add blacklists the granule containing a. Addresses outside the
// covered range are ignored: the marker performs its own vicinity check
// and may occasionally probe just past the reservation.
func (d *Dense) Add(a mem.Addr) {
	d.statsRec.Adds++
	i, ok := d.index(a)
	if !ok {
		return
	}
	if d.stamps[i] == 0 {
		d.count++
	}
	d.stamps[i] = d.gen
}

// Contains reports whether the granule containing a is blacklisted.
func (d *Dense) Contains(a mem.Addr) bool {
	d.statsRec.Queries++
	i, ok := d.index(a)
	if ok && d.stamps[i] != 0 {
		d.statsRec.Hits++
		return true
	}
	return false
}

// ContainsRange reports whether any granule intersecting [lo, hi) is
// blacklisted.
func (d *Dense) ContainsRange(lo, hi mem.Addr) bool {
	d.statsRec.Queries++
	if hi <= lo {
		return false
	}
	i, iok := d.index(lo)
	if !iok {
		if lo >= d.base+mem.Addr(d.ngran)<<d.shift {
			return false
		}
		i = 0
	}
	j, jok := d.index(hi - 1)
	if !jok {
		if hi-1 < d.base {
			return false
		}
		j = d.ngran - 1
	}
	for ; i <= j; i++ {
		if d.stamps[i] != 0 {
			d.statsRec.Hits++
			return true
		}
	}
	return false
}

// Len returns the number of blacklisted granules.
func (d *Dense) Len() int { return d.count }

// Clear removes all entries.
func (d *Dense) Clear() {
	for i := range d.stamps {
		d.stamps[i] = 0
	}
	d.count = 0
}

// BeginCycle advances the collection-cycle stamp.
func (d *Dense) BeginCycle() { d.gen++ }

// Expire removes entries last seen more than maxAge cycles ago.
func (d *Dense) Expire(maxAge uint32) int {
	removed := 0
	for i, s := range d.stamps {
		if s != 0 && d.gen-s > maxAge {
			d.stamps[i] = 0
			d.count--
			removed++
		}
	}
	d.statsRec.Expired += uint64(removed)
	return removed
}

// Stats returns accumulated counters.
func (d *Dense) Stats() Stats { return d.statsRec }

// Granules returns the blacklisted granule base addresses in order,
// for diagnostics and the paper's "quick examination of the blacklist"
// (observation 7).
func (d *Dense) Granules() []mem.Addr {
	var out []mem.Addr
	for i, s := range d.stamps {
		if s != 0 {
			out = append(out, d.base+mem.Addr(i)<<d.shift)
		}
	}
	return out
}

// Hashed is the hash-table form for discontinuous heaps: a fixed table
// of buckets, one stamp per bucket. "If a false reference is seen to
// any of the pages with a given hash address, all of them are
// effectively blacklisted. Since collisions can easily be made rare,
// this does not result in much lost precision." (paper, section 3)
type Hashed struct {
	granule  uint32
	shift    uint
	mask     uint32
	stamps   []uint32
	gen      uint32
	count    int
	statsRec Stats
}

var _ List = (*Hashed)(nil)

// NewHashed creates a hashed blacklist with nbuckets buckets (rounded up
// to a power of two, minimum 64) and the given granule size.
func NewHashed(nbuckets int, granule uint32) (*Hashed, error) {
	if err := checkGranule(granule); err != nil {
		return nil, err
	}
	n := 64
	for n < nbuckets {
		n <<= 1
	}
	return &Hashed{
		granule: granule,
		shift:   uint(bits.TrailingZeros32(granule)),
		mask:    uint32(n - 1),
		stamps:  make([]uint32, n),
		gen:     1,
	}, nil
}

func (h *Hashed) bucket(a mem.Addr) int {
	g := uint32(a) >> h.shift
	// Fibonacci hashing spreads consecutive granule numbers across the
	// table, keeping collisions rare as the paper requires.
	return int((g * 2654435761) & h.mask)
}

// Add blacklists the bucket for a's granule.
func (h *Hashed) Add(a mem.Addr) {
	h.statsRec.Adds++
	b := h.bucket(a)
	if h.stamps[b] == 0 {
		h.count++
	}
	h.stamps[b] = h.gen
}

// Contains reports whether a's granule hashes to an occupied bucket.
func (h *Hashed) Contains(a mem.Addr) bool {
	h.statsRec.Queries++
	if h.stamps[h.bucket(a)] != 0 {
		h.statsRec.Hits++
		return true
	}
	return false
}

// ContainsRange reports whether any granule in [lo, hi) hashes to an
// occupied bucket.
func (h *Hashed) ContainsRange(lo, hi mem.Addr) bool {
	h.statsRec.Queries++
	if hi <= lo {
		return false
	}
	g0 := uint32(lo) >> h.shift
	g1 := uint32(hi-1) >> h.shift
	for g := g0; ; g++ {
		if h.stamps[int((g*2654435761)&h.mask)] != 0 {
			h.statsRec.Hits++
			return true
		}
		if g == g1 {
			return false
		}
	}
}

// Len returns the number of occupied buckets.
func (h *Hashed) Len() int { return h.count }

// Clear removes all entries.
func (h *Hashed) Clear() {
	for i := range h.stamps {
		h.stamps[i] = 0
	}
	h.count = 0
}

// BeginCycle advances the collection-cycle stamp.
func (h *Hashed) BeginCycle() { h.gen++ }

// Expire removes buckets last touched more than maxAge cycles ago.
func (h *Hashed) Expire(maxAge uint32) int {
	removed := 0
	for i, s := range h.stamps {
		if s != 0 && h.gen-s > maxAge {
			h.stamps[i] = 0
			h.count--
			removed++
		}
	}
	h.statsRec.Expired += uint64(removed)
	return removed
}

// Stats returns accumulated counters.
func (h *Hashed) Stats() Stats { return h.statsRec }

// Disabled is a List that records nothing and rejects nothing. It is
// the paper's "blacklisting disabled" configuration: the same collector
// with the bold-face lines of figure 2 removed.
type Disabled struct{}

var _ List = Disabled{}

// Add does nothing.
func (Disabled) Add(mem.Addr) {}

// Contains always reports false.
func (Disabled) Contains(mem.Addr) bool { return false }

// ContainsRange always reports false.
func (Disabled) ContainsRange(lo, hi mem.Addr) bool { return false }

// Len is always zero.
func (Disabled) Len() int { return 0 }

// Clear does nothing.
func (Disabled) Clear() {}

// BeginCycle does nothing.
func (Disabled) BeginCycle() {}

// Expire does nothing.
func (Disabled) Expire(uint32) int { return 0 }

// Stats returns zero counters.
func (Disabled) Stats() Stats { return Stats{} }

// Locked wraps a List with a mutex, making every operation — in
// particular Add, which parallel mark workers issue concurrently when
// their local buffers spill — safe for concurrent use. The dense and
// hashed forms are order-independent within a cycle (Add stamps the
// granule with the current generation), so serialising concurrent adds
// in arbitrary order yields the same final blacklist as a serial mark.
type Locked struct {
	mu sync.Mutex
	l  List
}

var _ List = (*Locked)(nil)

// NewLocked wraps l; wrapping an already-Locked list returns it
// unchanged.
func NewLocked(l List) *Locked {
	if k, ok := l.(*Locked); ok {
		return k
	}
	return &Locked{l: l}
}

// Unwrap returns the underlying list.
func (k *Locked) Unwrap() List { k.mu.Lock(); defer k.mu.Unlock(); return k.l }

// Add blacklists the granule containing a.
func (k *Locked) Add(a mem.Addr) { k.mu.Lock(); k.l.Add(a); k.mu.Unlock() }

// Contains reports whether the granule containing a is blacklisted.
func (k *Locked) Contains(a mem.Addr) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.l.Contains(a)
}

// ContainsRange reports whether any granule intersecting [lo, hi) is
// blacklisted.
func (k *Locked) ContainsRange(lo, hi mem.Addr) bool {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.l.ContainsRange(lo, hi)
}

// Len returns the number of blacklisted granules.
func (k *Locked) Len() int { k.mu.Lock(); defer k.mu.Unlock(); return k.l.Len() }

// Clear removes all entries.
func (k *Locked) Clear() { k.mu.Lock(); k.l.Clear(); k.mu.Unlock() }

// BeginCycle advances the collection-cycle stamp.
func (k *Locked) BeginCycle() { k.mu.Lock(); k.l.BeginCycle(); k.mu.Unlock() }

// Expire removes entries not re-added within maxAge cycles.
func (k *Locked) Expire(maxAge uint32) int {
	k.mu.Lock()
	defer k.mu.Unlock()
	return k.l.Expire(maxAge)
}

// Stats returns accumulated counters.
func (k *Locked) Stats() Stats { k.mu.Lock(); defer k.mu.Unlock(); return k.l.Stats() }

// SortedAddrs is a helper for tests and diagnostics: it sorts a copy of
// the given addresses.
func SortedAddrs(as []mem.Addr) []mem.Addr {
	out := append([]mem.Addr(nil), as...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
