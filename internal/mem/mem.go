// Package mem implements the simulated 32-bit word-addressed address
// space on which the conservative collector operates.
//
// The paper's collector (Boehm, PLDI 1993) scans a real process image:
// machine registers, the C stack, static data segments and the malloc
// heap of a 32-bit workstation. A Go library cannot reinterpret its own
// stack or heap as raw words, so this package provides the substrate
// instead: an address space holding named segments (text, static data,
// stack, heap), each a contiguous run of 32-bit words. All other
// packages — the allocator, the marker, the simulated mutator machine —
// are built on top of it, exactly as the paper's collector sits on top
// of a SPARC or MIPS process image.
//
// Addresses are byte addresses, as on the paper's machines; memory is
// word-granular, with big-endian byte access provided for the unaligned
// pointer-candidate experiments (paper figure 1 and appendix B).
package mem

import (
	"fmt"
	"sort"
	"sync/atomic"
)

// Addr is a byte address in the simulated 32-bit address space.
type Addr uint32

// Word is the contents of one 32-bit memory word.
type Word uint32

// Fundamental sizes of the simulated machine. The paper's collector
// manages the heap in 4 KiB blocks ("pages"); we use the same geometry.
const (
	WordBytes = 4                     // bytes per word
	PageBytes = 4096                  // bytes per page (heap block)
	PageWords = PageBytes / WordBytes // words per page
)

// PageOf returns the page number containing address a.
func PageOf(a Addr) uint32 { return uint32(a) / PageBytes }

// PageBase returns the first address of the given page.
func PageBase(page uint32) Addr { return Addr(page * PageBytes) }

// PageCount returns the number of pages needed to hold n bytes.
func PageCount(bytes int) int { return (bytes + PageBytes - 1) / PageBytes }

// WordAligned reports whether a is word-aligned.
func WordAligned(a Addr) bool { return a%WordBytes == 0 }

// AlignWordDown rounds a down to the nearest word boundary.
func AlignWordDown(a Addr) Addr { return a &^ (WordBytes - 1) }

// AlignWordUp rounds a up to the nearest word boundary.
func AlignWordUp(a Addr) Addr { return (a + WordBytes - 1) &^ (WordBytes - 1) }

// AlignPageDown rounds a down to the nearest page boundary.
func AlignPageDown(a Addr) Addr { return a &^ (PageBytes - 1) }

// AlignPageUp rounds a up to the nearest page boundary.
func AlignPageUp(a Addr) Addr { return (a + PageBytes - 1) &^ (PageBytes - 1) }

// TrailingZeros returns the number of trailing zero bits of a. The paper
// (section 2) observes that objects should not be allocated at addresses
// with a large number of trailing zeros, because such addresses collide
// with common integer data.
func TrailingZeros(a Addr) int {
	if a == 0 {
		return 32
	}
	n := 0
	for a&1 == 0 {
		n++
		a >>= 1
	}
	return n
}

// Kind classifies a segment. The marker treats all segments with the
// Root flag as conservative root areas; Kind exists so that tools and
// experiments can report where a false reference came from.
type Kind int

// Segment kinds.
const (
	KindText  Kind = iota // program text (normally not scanned)
	KindData              // static data (scanned as roots, per the paper)
	KindStack             // mutator stack (scanned between SP and base)
	KindHeap              // the collected heap
	KindOther             // anything else (IO buffers, other live data...)
)

var kindNames = [...]string{"text", "data", "stack", "heap", "other"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// A Segment is a contiguous, word-aligned run of simulated memory.
//
// A segment is created with a reserved size (the most it may ever
// occupy) and a committed size (the prefix that is currently usable).
// The heap segment grows its committed region as the allocator expands
// the heap; the reserved region beyond it is the "vicinity of the heap"
// in which the paper's blacklisting recognises future false references.
type Segment struct {
	name     string
	kind     Kind
	base     Addr
	reserved int // words
	words    []Word
	root     bool
	writable bool
	// atomicStore makes Store use an atomic word write. The collector
	// sets it on heap segments when detached mark workers may read heap
	// words without holding the lock the storer holds (the only pairing
	// that is otherwise a data race: every other heap access is ordered
	// by the world lock or the heap-structure lock). Loads stay plain;
	// racing readers use LoadWordAtomic on the Words() slice instead.
	atomicStore bool
}

// NewSegment creates a segment. base must be word-aligned and nonzero
// (address 0 is reserved so that it can never be a valid object), sizes
// are in bytes and must be word multiples, and committed ≤ reserved.
func NewSegment(name string, kind Kind, base Addr, committed, reserved int) (*Segment, error) {
	switch {
	case base == 0:
		return nil, fmt.Errorf("mem: segment %q: base address 0 is reserved", name)
	case !WordAligned(base):
		return nil, fmt.Errorf("mem: segment %q: base %#x not word-aligned", name, uint32(base))
	case committed < 0 || reserved < 0:
		return nil, fmt.Errorf("mem: segment %q: negative size", name)
	case committed%WordBytes != 0 || reserved%WordBytes != 0:
		return nil, fmt.Errorf("mem: segment %q: sizes must be word multiples", name)
	case committed > reserved:
		return nil, fmt.Errorf("mem: segment %q: committed %d > reserved %d", name, committed, reserved)
	case uint64(base)+uint64(reserved) > 1<<32:
		return nil, fmt.Errorf("mem: segment %q: extends past the 32-bit address space", name)
	}
	return &Segment{
		name:     name,
		kind:     kind,
		base:     base,
		reserved: reserved / WordBytes,
		words:    make([]Word, committed/WordBytes),
		root:     kind == KindData, // static data is a root by default
		writable: true,
	}, nil
}

// Name returns the segment's name.
func (s *Segment) Name() string { return s.name }

// Kind returns the segment's kind.
func (s *Segment) Kind() Kind { return s.kind }

// Base returns the segment's first address.
func (s *Segment) Base() Addr { return s.base }

// Limit returns the first address past the committed region.
func (s *Segment) Limit() Addr { return s.base + Addr(len(s.words)*WordBytes) }

// ReservedLimit returns the first address past the reserved region.
func (s *Segment) ReservedLimit() Addr { return s.base + Addr(s.reserved*WordBytes) }

// Size returns the committed size in bytes.
func (s *Segment) Size() int { return len(s.words) * WordBytes }

// ReservedSize returns the reserved size in bytes.
func (s *Segment) ReservedSize() int { return s.reserved * WordBytes }

// Root reports whether the segment is scanned as a conservative root area.
func (s *Segment) Root() bool { return s.root }

// SetRoot marks or unmarks the segment as a root area. The paper notes
// that it is "useful, though sometimes more difficult, to avoid scanning
// large static data areas that contain seemingly random, nonpointer
// data"; clearing the root flag models exactly that exclusion.
func (s *Segment) SetRoot(root bool) { s.root = root }

// Writable reports whether stores to the segment are permitted.
func (s *Segment) Writable() bool { return s.writable }

// SetWritable write-protects or unprotects the segment, like the
// read-only mapping of a real process's constant data. Stores to a
// read-only segment fail; loads and root scanning are unaffected.
func (s *Segment) SetWritable(w bool) { s.writable = w }

// SetAtomicStore switches Store between plain and atomic word writes;
// see the field comment. Flip it only while no concurrent access to the
// segment is possible (at segment creation).
func (s *Segment) SetAtomicStore(on bool) { s.atomicStore = on }

// Contains reports whether a lies in the committed region.
func (s *Segment) Contains(a Addr) bool { return a >= s.base && a < s.Limit() }

// InReserved reports whether a lies in the reserved region (committed
// or not). For the heap segment this is the paper's "vicinity of the
// heap": an invalid value pointing here could become a valid object
// address after future heap growth, so it must be blacklisted.
func (s *Segment) InReserved(a Addr) bool { return a >= s.base && a < s.ReservedLimit() }

// Grow commits n additional bytes (a word multiple). The newly
// committed words are zero.
func (s *Segment) Grow(n int) error {
	if n < 0 || n%WordBytes != 0 {
		return fmt.Errorf("mem: segment %q: bad grow size %d", s.name, n)
	}
	if len(s.words)+n/WordBytes > s.reserved {
		return fmt.Errorf("mem: segment %q: grow by %d exceeds reservation (%d of %d bytes committed)",
			s.name, n, s.Size(), s.ReservedSize())
	}
	s.words = append(s.words, make([]Word, n/WordBytes)...)
	return nil
}

// wordIndex converts a to an index into s.words, reporting ok=false when
// a is outside the committed region or not word-aligned.
func (s *Segment) wordIndex(a Addr) (int, bool) {
	if !s.Contains(a) || !WordAligned(a) {
		return 0, false
	}
	return int(a-s.base) / WordBytes, true
}

// Load returns the word at word-aligned address a.
func (s *Segment) Load(a Addr) (Word, error) {
	i, ok := s.wordIndex(a)
	if !ok {
		return 0, fmt.Errorf("mem: segment %q: bad load at %#x", s.name, uint32(a))
	}
	return s.words[i], nil
}

// Store writes w to word-aligned address a.
func (s *Segment) Store(a Addr, w Word) error {
	i, ok := s.wordIndex(a)
	if !ok {
		return fmt.Errorf("mem: segment %q: bad store at %#x", s.name, uint32(a))
	}
	if !s.writable {
		return fmt.Errorf("mem: segment %q: store to read-only segment at %#x", s.name, uint32(a))
	}
	if s.atomicStore {
		StoreWordAtomic(&s.words[i], w)
		return nil
	}
	s.words[i] = w
	return nil
}

// LoadWordAtomic atomically reads the word at p. Word's underlying type
// is uint32, so the pointer conversion is plain Go — no unsafe needed.
// Detached mark workers use this on Words() slices to read heap words
// that a mutator may be storing to concurrently.
func LoadWordAtomic(p *Word) Word {
	return Word(atomic.LoadUint32((*uint32)(p)))
}

// StoreWordAtomic atomically writes w to p; the pairing of
// LoadWordAtomic.
func StoreWordAtomic(p *Word, w Word) {
	atomic.StoreUint32((*uint32)(p), uint32(w))
}

// LoadByte returns the byte at address a. The simulated machine is
// big-endian, like the paper's SPARC and (as configured) MIPS machines;
// byte 0 of a word is its most significant byte. Big-endianness matters
// for the paper's observation that a string's trailing NUL followed by
// the next string's first characters forms a small pointer-like value.
func (s *Segment) LoadByte(a Addr) (byte, error) {
	w, err := s.Load(AlignWordDown(a))
	if err != nil {
		return 0, fmt.Errorf("mem: segment %q: bad byte load at %#x", s.name, uint32(a))
	}
	shift := 24 - 8*(a%WordBytes)
	return byte(w >> shift), nil
}

// StoreByte writes b at address a (big-endian within the word).
func (s *Segment) StoreByte(a Addr, b byte) error {
	wa := AlignWordDown(a)
	w, err := s.Load(wa)
	if err != nil || !s.writable {
		return fmt.Errorf("mem: segment %q: bad byte store at %#x", s.name, uint32(a))
	}
	shift := 24 - 8*(a%WordBytes)
	w &^= Word(0xff) << shift
	w |= Word(b) << shift
	return s.Store(wa, w)
}

// Words exposes the committed words for bulk operations (root scanning,
// pollution generation). Callers must not grow the slice. Index i holds
// the word at address Base()+4i.
func (s *Segment) Words() []Word { return s.words }

// Fill sets every committed word to w.
func (s *Segment) Fill(w Word) {
	for i := range s.words {
		s.words[i] = w
	}
}

// An AddressSpace is an ordered collection of non-overlapping segments.
type AddressSpace struct {
	segs []*Segment // sorted by base address
	// rootScratch is Roots' reusable result buffer: root scans happen
	// once or more per collection, and rebuilding into a retained
	// backing array keeps the steady-state collection allocation-free.
	rootScratch []*Segment
}

// NewAddressSpace returns an empty address space.
func NewAddressSpace() *AddressSpace { return &AddressSpace{} }

// Map inserts a segment. Its reserved region must not overlap any
// existing segment's reserved region.
func (as *AddressSpace) Map(s *Segment) error {
	for _, t := range as.segs {
		if s.base < t.ReservedLimit() && t.base < s.ReservedLimit() {
			return fmt.Errorf("mem: segment %q [%#x,%#x) overlaps %q [%#x,%#x)",
				s.name, uint32(s.base), uint32(s.ReservedLimit()),
				t.name, uint32(t.base), uint32(t.ReservedLimit()))
		}
	}
	i := sort.Search(len(as.segs), func(i int) bool { return as.segs[i].base > s.base })
	as.segs = append(as.segs, nil)
	copy(as.segs[i+1:], as.segs[i:])
	as.segs[i] = s
	return nil
}

// MapNew creates a segment with NewSegment and maps it.
func (as *AddressSpace) MapNew(name string, kind Kind, base Addr, committed, reserved int) (*Segment, error) {
	s, err := NewSegment(name, kind, base, committed, reserved)
	if err != nil {
		return nil, err
	}
	if err := as.Map(s); err != nil {
		return nil, err
	}
	return s, nil
}

// Unmap removes the named segment, reporting whether it was present.
func (as *AddressSpace) Unmap(name string) bool {
	for i, s := range as.segs {
		if s.name == name {
			as.segs = append(as.segs[:i], as.segs[i+1:]...)
			return true
		}
	}
	return false
}

// Find returns the segment whose reserved region contains a, or nil.
func (as *AddressSpace) Find(a Addr) *Segment {
	i := sort.Search(len(as.segs), func(i int) bool { return as.segs[i].base > a })
	if i == 0 {
		return nil
	}
	if s := as.segs[i-1]; s.InReserved(a) {
		return s
	}
	return nil
}

// Segment returns the segment with the given name, or nil.
func (as *AddressSpace) Segment(name string) *Segment {
	for _, s := range as.segs {
		if s.name == name {
			return s
		}
	}
	return nil
}

// Segments returns the segments in address order. The returned slice is
// shared; callers must not modify it.
func (as *AddressSpace) Segments() []*Segment { return as.segs }

// Roots returns the segments flagged as conservative root areas, in
// address order. The returned slice is a scratch buffer invalidated by
// the next Roots call; callers must iterate it immediately rather than
// retain it.
func (as *AddressSpace) Roots() []*Segment {
	as.rootScratch = as.rootScratch[:0]
	for _, s := range as.segs {
		if s.root {
			as.rootScratch = append(as.rootScratch, s)
		}
	}
	return as.rootScratch
}

// Load reads the word at a from whichever segment contains it.
func (as *AddressSpace) Load(a Addr) (Word, error) {
	if s := as.Find(a); s != nil {
		return s.Load(a)
	}
	return 0, fmt.Errorf("mem: load from unmapped address %#x", uint32(a))
}

// Store writes the word at a to whichever segment contains it.
func (as *AddressSpace) Store(a Addr, w Word) error {
	if s := as.Find(a); s != nil {
		return s.Store(a, w)
	}
	return fmt.Errorf("mem: store to unmapped address %#x", uint32(a))
}
