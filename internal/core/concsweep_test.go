package core

import (
	"testing"
)

// TestConcurrentSweepDifferential is the acceptance criterion for the
// background sweeper: a world with ConcurrentSweep must be
// observationally identical to the plain lazy/eager worlds under an
// identical mutator schedule — equal allocation addresses (SweepChunk
// yields whenever a free list is stocked, so the demand drain keeps
// carving from the same blocks in the same order), equal per-collection
// sweep results, and equal final heap statistics. How many blocks the
// background goroutine happens to classify is scheduling-dependent
// (legitimately zero on one core), so conc_sweep_blocks is
// deliberately not asserted here.
func TestConcurrentSweepDifferential(t *testing.T) {
	variants := []struct {
		name   string
		cfg    Config
		minors bool
	}{
		{"full", Config{}, false},
		{"generational", Config{Generational: true}, true},
		{"parallel", Config{MarkWorkers: 4}, false},
		{"line", Config{LineAlloc: true}, false},
	}
	mask := []bool{true, false, false, true, false}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			concCfg := v.cfg
			concCfg.ConcurrentSweep = true
			we := newWorld(t, v.cfg)
			wc := newWorld(t, concCfg)
			te, err := we.RegisterLayout(mask)
			if err != nil {
				t.Fatal(err)
			}
			tc, err := wc.RegisterLayout(mask)
			if err != nil {
				t.Fatal(err)
			}
			if te != tc {
				t.Fatalf("descriptor ids diverge: %d vs %d", te, tc)
			}
			ae, se := worldChurn(t, we, 42, te, v.minors)
			ac, sc := worldChurn(t, wc, 42, tc, v.minors)
			if len(ae) != len(ac) {
				t.Fatalf("allocation counts diverge: %d vs %d", len(ae), len(ac))
			}
			for i := range ae {
				if ae[i] != ac[i] {
					t.Fatalf("allocation %d diverges: eager %#x concurrent-sweep %#x", i, ae[i], ac[i])
				}
			}
			if len(se) != len(sc) {
				t.Fatalf("collection counts diverge: %d vs %d", len(se), len(sc))
			}
			for i := range se {
				if se[i] != sc[i] {
					t.Fatalf("sweep %d diverges:\neager      %+v\nconc-sweep %+v", i, se[i], sc[i])
				}
			}
			if n := wc.Heap.SweepPending(); n != 0 {
				t.Fatalf("%d blocks still pending after FinishSweep", n)
			}
			ste, stc := we.Heap.Stats(), wc.Heap.Stats()
			stc.LazySweptBlocks = 0 // deferred-sweep bookkeeping, allowed to differ
			if ste != stc {
				t.Fatalf("final stats diverge:\neager      %+v\nconc-sweep %+v", ste, stc)
			}
		})
	}
}
