package core

import (
	"fmt"
	"sort"

	"repro/internal/mark"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Retention provenance at the world level: the collection pipeline
// harvests the marker's first-marking records (internal/mark,
// provenance.go) into a per-object map, and this file answers the
// questions the paper answers by hand — "why is this object live?"
// (WhyLive reconstructs the root→object path) and "how much is
// spuriously retained?" (RetentionReport re-marks a censored copy of
// the roots and attributes the difference).

// EnableProvenance turns first-marking provenance recording on or off
// for subsequent collections. Recording appends one fixed-size record
// per object marked; with it off (the default) collections are
// bit-identical to a world without the subsystem — no stores, no
// allocation, identical addresses and CollectionStats. Turning it off
// keeps the last harvested map.
func (w *World) EnableProvenance(on bool) {
	w.mu.Lock()
	w.prov.enabled = on
	w.mu.Unlock()
}

// ProvenanceEnabled reports whether subsequent collections record.
func (w *World) ProvenanceEnabled() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.prov.enabled
}

// ProvenanceValid reports whether a harvested provenance map exists,
// and if so which collection cycle it describes. Full and incremental
// cycles rebuild the map; generational minors merge their newly
// promoted objects into it (sticky mark bits mean an old object never
// re-wins a first-mark) and prune entries for objects since freed. For
// a complete map, enable recording before a full cycle.
func (w *World) ProvenanceValid() (bool, int) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.prov.valid, w.prov.cycle
}

// ProvenanceRecordCount returns the harvested map's size.
func (w *World) ProvenanceRecordCount() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.prov.records)
}

// ProvenanceFor returns the first-marking record for the object
// containing addr, if the harvested map has one.
func (w *World) ProvenanceFor(addr mem.Addr) (mark.ParentRecord, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	base, ok := w.Heap.FindObject(addr, true)
	if !ok {
		return mark.ParentRecord{}, false
	}
	rec, ok := w.prov.records[base]
	return rec, ok
}

// harvestProvenance collects the just-finished cycle's records from
// whichever recorders marked it into the per-object map. STW sharded
// phases record on the parallel workers, serial phases (including
// incremental cycles) on the serial marker; concurrent cycles record on
// both — the snapshot and finale root scans mark serially, the
// background chunks in parallel — and the mark-bit first-win rule keeps
// the merged set duplicate-free. kind is the trace cycle kind (0 full,
// 1 generational minor, 2 incremental, 3 concurrent full, 4 concurrent
// minor); minors merge, the rest rebuild. Returns the record count for
// CollectionStats. Callers hold w.mu.
func (w *World) harvestProvenance(kind int64) uint64 {
	if !w.prov.enabled {
		return 0
	}
	recording := false
	var recs []mark.ParentRecord
	if w.par != nil && w.par.Recording() {
		recording = true
		recs = append(recs, w.par.StopRecording()...)
	}
	if w.Marker.Recording() {
		recording = true
		recs = append(recs, w.Marker.StopRecording()...)
	}
	if !recording {
		// Enabled after this cycle's mark phase started: nothing recorded.
		return 0
	}
	minor := kind == 1 || kind == 4
	if !minor || w.prov.records == nil {
		w.prov.records = make(map[mem.Addr]mark.ParentRecord, len(recs))
	}
	for _, r := range recs {
		w.prov.records[r.Obj] = r
	}
	if minor {
		// A minor cycle's sweep may have freed young objects recorded by
		// an earlier cycle; sticky mark bits identify the survivors.
		for obj := range w.prov.records {
			if !w.Heap.Marked(obj) {
				delete(w.prov.records, obj)
			}
		}
	}
	w.prov.valid = true
	w.prov.cycle = w.collections
	w.tracer.Emit(trace.EvProvenance, int64(len(recs)), int64(len(w.prov.records)), kind)
	return uint64(len(recs))
}

// discardRecording drops any in-flight recording without harvesting
// (mark-only measurements clear the very marks the records describe).
// Callers hold w.mu.
func (w *World) discardRecording() {
	if w.par != nil && w.par.Recording() {
		w.par.StopRecording()
	}
	if w.Marker.Recording() {
		w.Marker.StopRecording()
	}
}

// WhyLive returns the chain of first-marking records from the object
// containing addr back to the root slot that ultimately retained it:
// the first element explains the object itself, the last names a
// register, stack word, or root-segment word. Requires a harvested
// provenance map (EnableProvenance, then collect).
func (w *World) WhyLive(addr mem.Addr) ([]mark.ParentRecord, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.whyLiveLocked(addr)
}

// whyLiveLocked is WhyLive's body for callers already holding w.mu
// (the retention watcher attaches a path to each alert from inside the
// collection barrier).
func (w *World) whyLiveLocked(addr mem.Addr) ([]mark.ParentRecord, error) {
	if !w.prov.valid {
		return nil, fmt.Errorf("core: WhyLive(%#x): no provenance map; EnableProvenance and collect first", addr)
	}
	base, ok := w.Heap.FindObject(addr, true)
	if !ok {
		return nil, fmt.Errorf("core: WhyLive(%#x): not a heap object", addr)
	}
	var path []mark.ParentRecord
	visited := map[mem.Addr]bool{base: true}
	for cur := base; ; {
		rec, ok := w.prov.records[cur]
		if !ok {
			return path, fmt.Errorf("core: WhyLive(%#x): no record for %#x (allocated after cycle %d?)",
				addr, cur, w.prov.cycle)
		}
		path = append(path, rec)
		if rec.Kind != mark.RootNone {
			return path, nil // reached a root slot
		}
		if rec.Parent == 0 {
			// Unattributed scan (plain MarkWords); the chain ends here.
			return path, nil
		}
		if visited[rec.Parent] {
			return path, fmt.Errorf("core: WhyLive(%#x): provenance cycle at %#x", addr, rec.Parent)
		}
		visited[rec.Parent] = true
		cur = rec.Parent
	}
}

// RootSlotID names one root slot: a register, stack word, or root
// segment word.
type RootSlotID struct {
	Kind  mark.RootKind
	Src   int32    // RootOrigin.Src: -1 world source, >= 0 mutator/segment index
	Index int32    // word index within the area / register number
	Addr  mem.Addr // the slot's simulated address; 0 for registers
}

func (s RootSlotID) String() string {
	who := "world"
	if s.Src >= 0 {
		who = fmt.Sprintf("%d", s.Src)
	}
	if s.Addr != 0 {
		return fmt.Sprintf("%s[%s+%d] @%#x", s.Kind, who, s.Index, s.Addr)
	}
	return fmt.Sprintf("%s[%s+%d]", s.Kind, who, s.Index)
}

// RootRetention is one root slot's sole-retention attribution: the
// objects and bytes that become unreachable when only that slot is
// censored (zeroed in a copy of the roots).
type RootRetention struct {
	Slot    RootSlotID
	Value   mem.Word     // the candidate the slot held
	Ref     mark.RefKind // exact / interior / unaligned
	Objects uint64
	Bytes   uint64
}

// SizeClassRetention breaks retention down by object size.
type SizeClassRetention struct {
	Words           int
	LiveObjects     uint64
	LiveBytes       uint64
	SpuriousObjects uint64
	SpuriousBytes   uint64
}

// LabelRetention breaks retention down by a caller-supplied structure
// label (RetentionOptions.Label).
type LabelRetention struct {
	Label           string
	LiveObjects     uint64
	LiveBytes       uint64
	SpuriousObjects uint64
	SpuriousBytes   uint64
}

// RetentionOptions parameterises RetentionReport.
type RetentionOptions struct {
	// FalseRefs are root word addresses the caller declares false
	// (misidentified candidates): the genuine pass re-marks with these
	// words censored, and everything only they retain is attributed as
	// spurious. Registers have no address; declare false registers by
	// zeroing them before the report instead.
	FalseRefs []mem.Addr
	// TopRoots caps the sole-retention ranking (default 8; negative
	// disables the per-slot analysis entirely).
	TopRoots int
	// Label, when non-nil, classifies each live object for the ByLabel
	// breakdown (e.g. by workload structure). It is called after the
	// report's marking passes finish, with the world lock released and
	// the mutators resumed, so it may call back into the World (Load,
	// WhyLive, ...) freely. Earlier versions invoked it under the lock —
	// a Label that touched the World deadlocked; a regression test pins
	// the fix (TestRetentionLabelMayCallWorld).
	Label func(base mem.Addr) string
}

// RetentionReport is the spurious-retention attribution.
type RetentionReport struct {
	// LiveObjects/LiveBytes: everything the current roots retain.
	LiveObjects uint64
	LiveBytes   uint64
	// Genuine*: retained with the declared FalseRefs censored.
	// Spurious* = live − genuine: objects whose every root path passes
	// through a censored word.
	GenuineObjects  uint64
	GenuineBytes    uint64
	SpuriousObjects uint64
	SpuriousBytes   uint64
	// CensoredRoots is how many FalseRefs resolved to a root word.
	CensoredRoots int
	// RootSlots is how many distinct first-marking root slots the
	// sole-retention analysis examined.
	RootSlots int
	BySize    []SizeClassRetention
	ByLabel   []LabelRetention
	// SoleRetainers ranks root slots by what each alone retains — the
	// no-oracle diagnostic: a planted false reference surfaces here
	// without the caller declaring it.
	SoleRetainers []RootRetention
}

// rootArea is one copied root area of a rootImage.
type rootArea struct {
	org    mark.RootOrigin
	words  []mem.Word
	sparse bool // register file: nonzero-words-only scan
}

// rootImage is a private copy of every root the collector would scan,
// in markRoots order. The report's passes mark from the copies, so
// censoring a word never touches the real machine state.
type rootImage struct {
	areas []rootArea
}

// buildRootImageLocked snapshots the roots. Callers hold w.mu with
// every mutator stopped.
func (w *World) buildRootImageLocked() *rootImage {
	img := &rootImage{}
	copyWords := func(ws []mem.Word) []mem.Word {
		out := make([]mem.Word, len(ws))
		copy(out, ws)
		return out
	}
	addSource := func(src RootSource, idx int32) {
		img.areas = append(img.areas, rootArea{
			org:    mark.RootOrigin{Kind: mark.RootRegister, Src: idx},
			words:  copyWords(src.Registers()),
			sparse: true,
		})
		stackWords, stackBase := src.LiveStack()
		img.areas = append(img.areas, rootArea{
			org:   mark.RootOrigin{Kind: mark.RootStack, Src: idx, Base: stackBase},
			words: copyWords(stackWords),
		})
	}
	if w.mut != nil {
		addSource(w.mut, -1)
	}
	for i, m := range w.muts {
		if m.src == nil {
			continue
		}
		addSource(m.src, int32(i))
	}
	for i, s := range w.Space.Roots() {
		img.areas = append(img.areas, rootArea{
			org:   mark.RootOrigin{Kind: mark.RootSegment, Src: int32(i), Base: s.Base()},
			words: copyWords(s.Words()),
		})
	}
	return img
}

// area returns the image area matching (kind, src), nil if absent.
func (img *rootImage) area(kind mark.RootKind, src int32) *rootArea {
	for i := range img.areas {
		a := &img.areas[i]
		if a.org.Kind == kind && a.org.Src == src {
			return a
		}
	}
	return nil
}

// censorAddr zeroes the image word at root address a, reporting
// whether a named one (registers are not addressable).
func (img *rootImage) censorAddr(a mem.Addr) bool {
	for i := range img.areas {
		ar := &img.areas[i]
		if ar.org.Base == 0 {
			continue
		}
		limit := ar.org.Base + mem.Addr(len(ar.words)*mem.WordBytes)
		if a >= ar.org.Base && a < limit {
			ar.words[(a-ar.org.Base)/mem.WordBytes] = 0
			return true
		}
	}
	return false
}

// mark runs one full marking pass from the image through m.
func (img *rootImage) mark(m *mark.Marker) {
	for _, a := range img.areas {
		if a.sparse {
			m.MarkSparseRoots(a.org, a.words)
		} else {
			m.MarkRootArea(a.org, a.words)
		}
	}
	m.Drain()
}

// GetRetentionReport measures genuine versus spuriously-retained
// bytes. It stops the world, completes any in-flight incremental cycle
// and deferred sweeps, snapshots every root area, and re-marks the
// heap from censored copies of that snapshot:
//
//	live    = marked from the snapshot as-is
//	genuine = marked with the declared FalseRefs zeroed
//	spurious = live \ genuine
//
// plus a per-slot sole-retention ranking (each first-marking root slot
// censored alone) that surfaces heavy false retainers without any
// declaration. One edge case is accepted rather than fought: under
// AnyByteOffset, zeroing a word can *create* straddle candidates, so
// the genuine set is not always a subset of the live set; spurious is
// computed as the set difference of the passes, never by subtraction.
//
// Like MarkOnly, the report destroys current mark bits (generational
// worlds lose their old generation; the next full cycle rebuilds it).
// Cost: one full mark pass per distinct first-marking root slot, plus
// two for the live/genuine passes.
func (w *World) GetRetentionReport(opts RetentionOptions) RetentionReport {
	rep, live, spur := w.retentionPasses(opts)
	if opts.Label != nil {
		// Labeling runs outside the world lock with the mutators resumed:
		// the callback may call back into the World (see RetentionOptions).
		byLabel := map[string]*LabelRetention{}
		for _, o := range live {
			bytes := uint64(o.words * mem.WordBytes)
			lbl := opts.Label(o.base)
			lc := byLabel[lbl]
			if lc == nil {
				lc = &LabelRetention{Label: lbl}
				byLabel[lbl] = lc
			}
			lc.LiveObjects++
			lc.LiveBytes += bytes
			if spur[o.base] {
				lc.SpuriousObjects++
				lc.SpuriousBytes += bytes
			}
		}
		for _, lc := range byLabel {
			rep.ByLabel = append(rep.ByLabel, *lc)
		}
		sort.Slice(rep.ByLabel, func(i, j int) bool { return rep.ByLabel[i].Label < rep.ByLabel[j].Label })
	}
	return rep
}

// retainedObj is one live object the report's passes saw, for the
// breakdowns computed after the lock is released.
type retainedObj struct {
	base  mem.Addr
	words int
}

// retentionPasses runs the report's marking passes under the world
// lock and returns the report (without ByLabel), the live objects, and
// the spurious subset.
func (w *World) retentionPasses(opts RetentionOptions) (RetentionReport, []retainedObj, map[mem.Addr]bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.stopMutatorsLocked()
	defer w.resumeMutatorsLocked()
	if w.incActive {
		w.finishIncrementalLocked()
	}
	if w.concActive {
		w.finishConcurrentLocked()
	}
	w.Heap.FinishSweep()
	// Bump spans (LineAlloc) hold carved-but-unissued slots; return them
	// so the report's passes see only real objects.
	w.Heap.FlushSpans()

	img := w.buildRootImageLocked()
	// A private marker: the report's candidate tests must not pollute
	// the world's blacklist (censoring words changes the candidate set).
	m := mark.New(w.Heap, mark.Config{Policy: w.cfg.Pointer, Alignment: w.cfg.Alignment})

	// Pass L: live set, with recording on to learn the root slots.
	w.Heap.ClearMarks()
	m.StartRecording()
	img.mark(m)
	recs := m.StopRecording()
	liveObjects, liveBytes := w.Heap.CountMarked()
	liveSet := make(map[mem.Addr]int, liveObjects)
	w.Heap.ForEachObject(func(base mem.Addr) {
		if w.Heap.Marked(base) {
			words, _ := w.Heap.ObjectSpan(base)
			liveSet[base] = words
		}
	})

	rep := RetentionReport{LiveObjects: liveObjects, LiveBytes: liveBytes}

	// Sole-retention ranking, on the pristine image: censor each
	// distinct first-marking root slot alone and re-mark.
	topRoots := opts.TopRoots
	if topRoots == 0 {
		topRoots = 8
	}
	if topRoots > 0 {
		type slotKey struct {
			kind mark.RootKind
			src  int32
			idx  int32
		}
		reps := map[slotKey]RootRetention{}
		var order []slotKey
		for _, r := range recs {
			if r.Kind == mark.RootNone {
				continue
			}
			k := slotKey{r.Kind, r.Src, r.Index}
			if _, ok := reps[k]; !ok {
				reps[k] = RootRetention{
					Slot:  RootSlotID{Kind: r.Kind, Src: r.Src, Index: r.Index, Addr: r.Parent},
					Value: r.Value,
					Ref:   r.Ref,
				}
				order = append(order, k)
			}
		}
		rep.RootSlots = len(order)
		for _, k := range order {
			ar := img.area(k.kind, k.src)
			if ar == nil || int(k.idx) >= len(ar.words) {
				continue
			}
			saved := ar.words[k.idx]
			ar.words[k.idx] = 0
			w.Heap.ClearMarks()
			img.mark(m)
			mo, mb := w.Heap.CountMarked()
			ar.words[k.idx] = saved
			rr := reps[k]
			if mo < liveObjects {
				rr.Objects = liveObjects - mo
			}
			if mb < liveBytes {
				rr.Bytes = liveBytes - mb
			}
			if rr.Objects > 0 || rr.Bytes > 0 {
				rep.SoleRetainers = append(rep.SoleRetainers, rr)
			}
		}
		sort.SliceStable(rep.SoleRetainers, func(i, j int) bool {
			a, b := rep.SoleRetainers[i], rep.SoleRetainers[j]
			if a.Bytes != b.Bytes {
				return a.Bytes > b.Bytes
			}
			return a.Objects > b.Objects
		})
		if len(rep.SoleRetainers) > topRoots {
			rep.SoleRetainers = rep.SoleRetainers[:topRoots]
		}
	}

	// Pass G: genuine set, with the declared false words censored.
	spurSet := map[mem.Addr]int{}
	for _, fa := range opts.FalseRefs {
		if img.censorAddr(fa) {
			rep.CensoredRoots++
		}
	}
	if rep.CensoredRoots > 0 {
		w.Heap.ClearMarks()
		img.mark(m)
		for base, words := range liveSet {
			if !w.Heap.Marked(base) {
				spurSet[base] = words
			}
		}
	}
	for _, words := range spurSet {
		rep.SpuriousObjects++
		rep.SpuriousBytes += uint64(words * mem.WordBytes)
	}
	rep.GenuineObjects = rep.LiveObjects - rep.SpuriousObjects
	rep.GenuineBytes = rep.LiveBytes - rep.SpuriousBytes

	// Size breakdown over the live set; the label breakdown waits for
	// the lock to drop (the callback may re-enter the World).
	bySize := map[int]*SizeClassRetention{}
	live := make([]retainedObj, 0, len(liveSet))
	spur := make(map[mem.Addr]bool, len(spurSet))
	for base, words := range liveSet {
		bytes := uint64(words * mem.WordBytes)
		_, spurious := spurSet[base]
		live = append(live, retainedObj{base: base, words: words})
		if spurious {
			spur[base] = true
		}
		sc := bySize[words]
		if sc == nil {
			sc = &SizeClassRetention{Words: words}
			bySize[words] = sc
		}
		sc.LiveObjects++
		sc.LiveBytes += bytes
		if spurious {
			sc.SpuriousObjects++
			sc.SpuriousBytes += bytes
		}
	}
	for _, sc := range bySize {
		rep.BySize = append(rep.BySize, *sc)
	}
	sort.Slice(rep.BySize, func(i, j int) bool { return rep.BySize[i].Words < rep.BySize[j].Words })

	w.Heap.ClearMarks()
	w.tracer.Emit(trace.EvRetention,
		int64(rep.LiveObjects), int64(rep.SpuriousObjects), int64(rep.RootSlots))
	return rep, live, spur
}
