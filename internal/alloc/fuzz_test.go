package alloc

import (
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/mem"
)

// FuzzAllocatorOps interprets the fuzz input as an operation tape over
// the allocator — allocate (several kinds), free, mark, sweep, expand —
// and checks structural invariants after every operation.
func FuzzAllocatorOps(f *testing.F) {
	f.Add([]byte{0, 10, 1, 20, 2, 0, 3, 4})
	f.Add([]byte{0, 200, 0, 200, 5, 0, 4, 0, 0, 1})
	f.Add([]byte{6, 0, 6, 1, 2, 0, 4, 0})

	f.Fuzz(func(t *testing.T, tape []byte) {
		space := mem.NewAddressSpace()
		a, err := New(space, Config{
			HeapBase:     0x400000,
			InitialBytes: 64 * 1024,
			ReserveBytes: 512 * 1024,
		})
		if err != nil {
			t.Fatal(err)
		}
		id, err := a.RegisterDescriptor([]bool{true, false, true})
		if err != nil {
			t.Fatal(err)
		}
		var live []mem.Addr
		marked := map[mem.Addr]bool{}
		for i := 0; i+1 < len(tape) && i < 512; i += 2 {
			op, arg := tape[i], int(tape[i+1])
			switch op % 7 {
			case 0: // small alloc
				p, err := a.Alloc(1+arg%MaxSmallWords, arg%5 == 0)
				if err == nil {
					live = append(live, p)
				} else if err != ErrNeedMemory {
					t.Fatalf("alloc: %v", err)
				}
			case 1: // large alloc
				p, err := a.Alloc(MaxSmallWords+1+arg*8, false)
				if err == nil {
					live = append(live, p)
				} else if err != ErrNeedMemory {
					t.Fatalf("large alloc: %v", err)
				}
			case 2: // typed alloc
				p, err := a.AllocTyped(id)
				if err == nil {
					live = append(live, p)
				} else if err != ErrNeedMemory {
					t.Fatalf("typed alloc: %v", err)
				}
			case 3: // free one
				if len(live) > 0 {
					idx := arg % len(live)
					if err := a.Free(live[idx]); err != nil {
						t.Fatalf("free: %v", err)
					}
					delete(marked, live[idx])
					live = append(live[:idx], live[idx+1:]...)
				}
			case 4: // mark one
				if len(live) > 0 {
					p := live[arg%len(live)]
					a.Mark(p)
					marked[p] = true
				}
			case 5: // sweep: unmarked die, marked survive unmarked
				a.Sweep()
				var still []mem.Addr
				for _, p := range live {
					if marked[p] {
						if !a.IsAllocated(p) {
							t.Fatalf("marked object %#x swept", uint32(p))
						}
						still = append(still, p)
					} else if a.IsAllocated(p) {
						t.Fatalf("unmarked object %#x survived sweep", uint32(p))
					}
				}
				live = still
				marked = map[mem.Addr]bool{}
			case 6: // expand
				if a.CanExpand() {
					if err := a.Expand(4096); err != nil {
						t.Fatalf("expand: %v", err)
					}
				}
			}
			// Invariant: every live object resolves to itself.
			for _, p := range live {
				if base, ok := a.FindObject(p, false); !ok || base != p {
					t.Fatalf("live object %#x lost (ok=%v base=%#x)", uint32(p), ok, uint32(base))
				}
			}
			// Invariant: block accounting is consistent.
			st := a.Stats()
			if st.BlocksDedicated+st.BlocksFree != a.NumBlocks() {
				t.Fatalf("block accounting: %d + %d != %d",
					st.BlocksDedicated, st.BlocksFree, a.NumBlocks())
			}
		}
	})
}

// FuzzConcurrentMark interprets the fuzz input as an allocation recipe,
// then races several goroutines MarkAtomic-ing every object (run under
// `go test -race` to exercise the CAS): exactly one goroutine must win
// each mark bit, and afterwards every object must be Marked.
func FuzzConcurrentMark(f *testing.F) {
	f.Add([]byte{4, 1, 200, 30, 7})
	f.Add([]byte{255, 255, 0, 3, 3, 3, 64})
	f.Add([]byte{1})

	f.Fuzz(func(t *testing.T, tape []byte) {
		space := mem.NewAddressSpace()
		a, err := New(space, Config{
			HeapBase:     0x400000,
			InitialBytes: 256 * 1024,
			ReserveBytes: 512 * 1024,
		})
		if err != nil {
			t.Fatal(err)
		}
		var objs []mem.Addr
		for i := 0; i < len(tape) && i < 256; i++ {
			words := 1 + int(tape[i])%(MaxSmallWords+64) // small and large
			p, err := a.Alloc(words, tape[i]%5 == 0)
			if err == ErrNeedMemory {
				break
			}
			if err != nil {
				t.Fatal(err)
			}
			objs = append(objs, p)
		}
		if len(objs) == 0 {
			t.Skip("no allocations")
		}
		const goroutines = 4
		wins := make([]atomic.Int32, len(objs))
		var wg sync.WaitGroup
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				// Each goroutine walks the objects from a different start
				// so the CAS collisions land mid-stream.
				for i := range objs {
					j := (i + g*len(objs)/goroutines) % len(objs)
					if a.MarkAtomic(objs[j]) {
						wins[j].Add(1)
					}
				}
			}(g)
		}
		wg.Wait()
		for i, p := range objs {
			if n := wins[i].Load(); n != 1 {
				t.Fatalf("object %d (%#x): %d goroutines won the mark CAS", i, uint32(p), n)
			}
			if !a.Marked(p) {
				t.Fatalf("object %d (%#x) not marked", i, uint32(p))
			}
		}
		// The marked set survives a sticky sweep and dies on the next.
		a.SweepSticky()
		for i, p := range objs {
			if !a.IsAllocated(p) {
				t.Fatalf("marked object %d swept", i)
			}
		}
		a.ClearMarks()
		a.Sweep()
		for i, p := range objs {
			if a.IsAllocated(p) {
				t.Fatalf("unmarked object %d survived", i)
			}
		}
	})
}
