package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"repro/internal/alloc"
	"repro/internal/mem"
	"repro/internal/trace"
)

// Multi-tenant serving (DESIGN.md section 5i). A Tenant wraps one or
// more Mutator handles with a declared heap budget: every allocation a
// tenant performs charges its padded object bytes against the budget
// atomically, every object it loses to a collection (or frees
// explicitly) is credited back, and an allocation that would exceed
// the budget runs the tenant's over-budget policy instead of touching
// the heap. The accounting follows the starlark safety-contract idiom
// (per-thread budgets, cancellation tokens, best-effort contracts
// upheld through testing): budgets are enforced exactly at the charge
// boundary, and the contract is proven by the tenant test battery, not
// by convention.
//
// Charging points. The cached fast path charges with one CAS before
// consuming a slot (a failed charge diverts to the slow path); the
// slow path charges under the central lock before allocating, after
// first crediting any owned objects that already died (the allocator's
// ownership table, alloc/owners.go, maps each consumed object back to
// its tenant). Unbudgeted tenants (BudgetBytes == 0) skip both the
// charge and the ownership tagging entirely, so the plumbing provably
// costs nothing when unused — the differential test pins an unbudgeted
// tenant bit-identical to a bare Mutator.
//
// Cancellation. Cancel sets a token checked at every allocation point
// — the safepoints of this design — so a cancelled tenant's next
// allocation on any of its handles fails with ErrTenantCancelled
// without touching the heap. Eviction cancels implicitly.

// TenantPolicy selects what an over-budget allocation does.
type TenantPolicy int

const (
	// TenantFail denies the allocation with a *BudgetError as soon as
	// crediting already-dead owned objects cannot make room: the
	// hard-limit contract, exact at the budget boundary.
	TenantFail TenantPolicy = iota
	// TenantCollectFirst runs a full collection (plus any deferred
	// sweep) to reclaim the tenant's dead objects before deciding; it
	// only fails after that collection leaves the budget still
	// exhausted.
	TenantCollectFirst
	// TenantEvict reclaims the tenant wholesale: every object it still
	// owns is freed, the tenant is cancelled, and the allocation (and
	// every later one) fails with ErrTenantEvicted. The objects are
	// freed regardless of reachability — eviction is the contract that
	// the tenant's graph dies with it — so references other tenants
	// hold into an evicted tenant's objects become dangling, exactly
	// like an explicit Free of a shared object. Conservative pins do
	// not save an evicted object (see DESIGN.md 5i).
	TenantEvict
)

func (p TenantPolicy) String() string {
	switch p {
	case TenantCollectFirst:
		return "collect-first"
	case TenantEvict:
		return "evict"
	default:
		return "fail"
	}
}

// Typed sentinel errors for budget enforcement; match with errors.Is.
var (
	// ErrBudgetExceeded is wrapped by every *BudgetError denial.
	ErrBudgetExceeded = errors.New("core: tenant heap budget exceeded")
	// ErrTenantCancelled reports an allocation on a cancelled tenant.
	ErrTenantCancelled = errors.New("core: tenant cancelled")
	// ErrTenantEvicted reports an allocation on an evicted tenant (the
	// eviction itself returns it too). It wraps ErrTenantCancelled:
	// eviction implies cancellation.
	ErrTenantEvicted = fmt.Errorf("core: tenant evicted: %w", ErrTenantCancelled)
)

// BudgetError is the typed denial TenantFail (and an unlucky
// TenantCollectFirst) returns: the allocation that would have crossed
// the budget, with the accounting at the moment of denial.
type BudgetError struct {
	Tenant    string
	Requested uint64 // bytes the denied allocation would have charged
	Live      uint64 // bytes charged to the tenant at denial
	Budget    uint64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("%v: tenant %q: %d requested, %d live of %d budget",
		ErrBudgetExceeded, e.Tenant, e.Requested, e.Live, e.Budget)
}

func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }

// TenantConfig declares one tenant's contract.
type TenantConfig struct {
	Name string
	// BudgetBytes caps the bytes charged to the tenant at any moment
	// (live, in the sense of not-yet-reclaimed). 0 means unbudgeted:
	// no charging, no ownership tagging, no fast-path cost.
	BudgetBytes uint64
	// Policy selects what an over-budget allocation does.
	Policy TenantPolicy
}

// TenantStats is a snapshot of one tenant's accounting.
type TenantStats struct {
	// LiveBytes is the bytes currently charged against the budget:
	// allocated by the tenant and not yet credited back by a sweep,
	// an explicit free, or eviction. Always 0 for unbudgeted tenants.
	LiveBytes uint64
	// AllocatedObjects/AllocatedBytes count every successful
	// allocation (cumulative; bytes are the padded charge sizes).
	AllocatedObjects uint64
	AllocatedBytes   uint64
	// ReclaimedObjects/ReclaimedBytes count owned objects credited
	// back: swept as garbage, explicitly freed, or evicted.
	ReclaimedObjects uint64
	ReclaimedBytes   uint64
	// BudgetDenials counts allocations denied with a *BudgetError.
	BudgetDenials uint64
	// ForcedCollections counts full collections the collect-first
	// policy ran on this tenant's behalf.
	ForcedCollections uint64
	Cancelled         bool
	Evicted           bool
}

// Tenant is one budgeted session sharing the world's heap. Create with
// World.NewTenant, then create per-goroutine handles with NewMutator.
// All methods are safe for concurrent use.
type Tenant struct {
	w   *World
	id  int32 // 1-based index into w.tenants; 0 is never a tenant id
	cfg TenantConfig

	live         atomic.Uint64
	allocObjects atomic.Uint64
	allocBytes   atomic.Uint64
	reclObjects  atomic.Uint64
	reclBytes    atomic.Uint64
	denials      atomic.Uint64
	forcedGCs    atomic.Uint64
	cancelled    atomic.Bool
	evicted      atomic.Bool

	// muts holds the tenant's handles, guarded by w.mu (eviction
	// flushes them; the safepoint protocol already covers stopping).
	muts []*Mutator
}

// NewTenant registers a tenant with the given contract.
func (w *World) NewTenant(cfg TenantConfig) *Tenant {
	w.mu.Lock()
	defer w.mu.Unlock()
	t := &Tenant{w: w, cfg: cfg}
	w.tenants = append(w.tenants, t)
	t.id = int32(len(w.tenants))
	if cfg.Name == "" {
		t.cfg.Name = fmt.Sprintf("tenant-%d", t.id)
	}
	w.met.tenants.Set(int64(len(w.tenants)))
	if cfg.BudgetBytes > 0 && !w.ownerCreditSet {
		// First budgeted tenant: install the credit path that returns a
		// dead owned object's bytes to its tenant. Worlds that never get
		// here keep a nil ownership table and pay nothing.
		w.ownerCreditSet = true
		w.Heap.SetOwnerCredit(w.creditTenant)
	}
	return t
}

// Tenants returns the world's registered tenants in creation order.
func (w *World) Tenants() []*Tenant {
	w.mu.Lock()
	defer w.mu.Unlock()
	return append([]*Tenant(nil), w.tenants...)
}

// NewMutator creates an allocation handle charged to this tenant; like
// World.NewMutator it is permanent and must not be shared between
// goroutines.
func (t *Tenant) NewMutator() *Mutator { return t.w.newMutator(t) }

// Name returns the tenant's name; ID its 1-based registration index
// (the id trace events carry).
func (t *Tenant) Name() string { return t.cfg.Name }

// ID returns the tenant's 1-based registration index.
func (t *Tenant) ID() int32 { return t.id }

// Config returns the contract the tenant was created with.
func (t *Tenant) Config() TenantConfig { return t.cfg }

// Cancel sets the cancellation token: every later allocation on any of
// the tenant's handles fails with ErrTenantCancelled at its next
// allocation point. Objects the tenant already allocated are
// unaffected (eviction is the policy that reclaims them).
func (t *Tenant) Cancel() { t.cancelled.Store(true) }

// Cancelled reports whether the tenant was cancelled (or evicted).
func (t *Tenant) Cancelled() bool { return t.cancelled.Load() }

// Evicted reports whether the tenant was evicted.
func (t *Tenant) Evicted() bool { return t.evicted.Load() }

// Stats returns a snapshot of the tenant's accounting.
func (t *Tenant) Stats() TenantStats {
	return TenantStats{
		LiveBytes:         t.live.Load(),
		AllocatedObjects:  t.allocObjects.Load(),
		AllocatedBytes:    t.allocBytes.Load(),
		ReclaimedObjects:  t.reclObjects.Load(),
		ReclaimedBytes:    t.reclBytes.Load(),
		BudgetDenials:     t.denials.Load(),
		ForcedCollections: t.forcedGCs.Load(),
		Cancelled:         t.cancelled.Load(),
		Evicted:           t.evicted.Load(),
	}
}

// OwnedBytes returns the bytes of objects the allocator's ownership
// table still attributes to the tenant. After a full collection,
// FinishSweep and barrier reconcile this equals Stats().LiveBytes
// exactly — the zero-attribution-drift invariant the SLO test gates.
func (t *Tenant) OwnedBytes() uint64 {
	w := t.w
	w.mu.Lock()
	defer w.mu.Unlock()
	var b uint64
	w.lockHeapLocked(func() { b = w.Heap.OwnedBytes(t.id) })
	return b
}

func (t *Tenant) budgeted() bool { return t.cfg.BudgetBytes > 0 }

// fastCharge is the lock-free charge the cached allocation fast path
// performs before consuming a slot: false diverts to the slow path,
// which resolves cancellation or the over-budget policy under the
// central lock. Unbudgeted tenants pay one cancellation load.
func (t *Tenant) fastCharge(bytes uint64) bool {
	if t.cancelled.Load() {
		return false
	}
	if t.cfg.BudgetBytes == 0 {
		return true
	}
	return t.tryCharge(bytes)
}

// tryCharge charges bytes against the budget iff they fit: the pass
// condition is live+bytes <= budget, so enforcement is exact at the
// boundary (a budget of exactly N object charges admits exactly N).
func (t *Tenant) tryCharge(bytes uint64) bool {
	for {
		cur := t.live.Load()
		next := cur + bytes
		if next < cur || next > t.cfg.BudgetBytes {
			return false
		}
		if t.live.CompareAndSwap(cur, next) {
			return true
		}
	}
}

// uncharge returns bytes charged for an allocation that then failed.
func (t *Tenant) uncharge(bytes uint64) {
	t.live.Add(^(bytes - 1))
}

// noteAlloc records one successful allocation of the given charge.
func (t *Tenant) noteAlloc(bytes uint64) {
	t.allocObjects.Add(1)
	t.allocBytes.Add(bytes)
}

// creditTenant returns reclaimed bytes to a tenant's budget and
// reclamation counters; it is the allocator's owner-credit callback
// (fired per dead object by ReconcileOwners and tag displacement) and
// the explicit-free/eviction credit path. Credited bytes were always
// charged first, so the subtraction cannot underflow.
func (w *World) creditTenant(id int32, objects, bytes uint64) {
	if id < 1 || int(id) > len(w.tenants) {
		return
	}
	t := w.tenants[id-1]
	if bytes > 0 {
		t.live.Add(^(bytes - 1))
	}
	t.reclObjects.Add(objects)
	t.reclBytes.Add(bytes)
}

// tenantChargeBytes is what one allocation of nwords charges: the
// padded size-class bytes for small (and typed) objects, the exact
// word size for large ones — in both cases the same value the central
// BytesAllocated accounting adds, so budget arithmetic and heap
// arithmetic can never drift.
func tenantChargeBytes(nwords int) uint64 {
	if nwords < 1 {
		return 0 // invalid size: the allocator rejects it downstream
	}
	if !alloc.IsLarge(nwords) {
		_, words := alloc.ClassFor(nwords)
		return uint64(words) * mem.WordBytes
	}
	return uint64(nwords) * mem.WordBytes
}

// tenantChargeLocked is the slow path's charge: cancellation check,
// then the charge, then — over budget — the remedies in order of
// cost: credit already-dead owned objects; for collect-first, a full
// collection plus deferred sweep; for evict, wholesale eviction.
// Callers hold w.mu (never any m.mu). A nil return means bytes were
// charged (or the tenant is unbudgeted) and the caller may allocate;
// it must uncharge if the allocation then fails.
func (w *World) tenantChargeLocked(t *Tenant, bytes uint64) error {
	if t.cancelled.Load() {
		if t.evicted.Load() {
			return ErrTenantEvicted
		}
		return ErrTenantCancelled
	}
	if !t.budgeted() {
		return nil
	}
	if t.tryCharge(bytes) {
		return nil
	}
	// Objects swept since the last barrier reconcile (or classified
	// dead by a lazy barrier) may already cover the charge.
	w.lockHeapLocked(func() { w.Heap.ReconcileOwners() })
	if t.tryCharge(bytes) {
		return nil
	}
	switch t.cfg.Policy {
	case TenantCollectFirst:
		t.forcedGCs.Add(1)
		// Land any in-flight cycle first: its snapshot may predate the
		// tenant's garbage, so completing it proves nothing. The
		// collection the contract promises is a fresh full cycle.
		if w.concActive {
			w.stwFinishConcurrent()
		}
		if w.incActive {
			w.stwFinishIncremental()
		}
		w.stwCollect()
		// The barrier reconciled eagerly-swept objects; under lazy or
		// concurrent sweep some blocks are still pending, so land them
		// and reconcile once more for an exact verdict.
		w.lockHeapLocked(func() {
			w.Heap.FinishSweep()
			w.Heap.ReconcileOwners()
		})
		if t.tryCharge(bytes) {
			return nil
		}
	case TenantEvict:
		w.evictTenantLocked(t)
		return ErrTenantEvicted
	}
	t.denials.Add(1)
	w.met.budgetDenials.Inc()
	if w.tracer.Enabled() {
		w.tracer.Emit(trace.EvBudgetExceeded, int64(t.id), int64(bytes), int64(t.live.Load()))
	}
	return &BudgetError{
		Tenant:    t.cfg.Name,
		Requested: bytes,
		Live:      t.live.Load(),
		Budget:    t.cfg.BudgetBytes,
	}
}

// evictTenantLocked reclaims a tenant wholesale: cancel it, finish any
// in-flight cycle (freeing objects mid-mark would hand dangling work
// to the background markers), flush the tenant's caches (carved but
// unconsumed slots return to the free lists instead of being freed),
// then free every object the tenant still owns and credit the bytes.
// Callers hold w.mu and no m.mu.
func (w *World) evictTenantLocked(t *Tenant) {
	t.cancelled.Store(true)
	t.evicted.Store(true)
	if w.concActive {
		w.stwFinishConcurrent()
	}
	if w.incActive {
		w.stwFinishIncremental()
	}
	for _, tm := range t.muts {
		tm.mu.Lock()
		tm.flushLocked()
		tm.resyncLocked()
		tm.mu.Unlock()
	}
	var objects, bytes uint64
	w.lockHeapLocked(func() {
		// Land deferred sweeps first: a pending block's bits still
		// encode the previous cycle's liveness, and crediting dead
		// objects now shrinks the explicit free list walk below.
		w.Heap.FinishSweep()
		w.Heap.ReconcileOwners()
		for _, base := range w.Heap.OwnedOf(t.id) {
			if err := w.Heap.Free(base); err != nil {
				continue
			}
			_, b, _ := w.Heap.TakeOwner(base)
			objects++
			bytes += b
		}
		// Line profile: Free parks slots on the freed LIFO with their
		// alloc bits still set (so a reallocation reuses them first).
		// Eviction must be exact — and the victim's roots may still
		// dangle into these slots, which would re-mark them at the next
		// cycle — so land the flush barrier that drops the bits now.
		w.Heap.FlushSpans()
	})
	w.creditTenant(t.id, objects, bytes)
	w.met.tenantEvictions.Inc()
	if w.tracer.Enabled() {
		w.tracer.Emit(trace.EvTenantEvict, int64(t.id), int64(objects), int64(bytes))
	}
}
