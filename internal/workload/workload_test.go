package workload

import (
	"testing"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/simrand"
)

func newWorld(t *testing.T, cfg core.Config) *core.World {
	t.Helper()
	if cfg.InitialHeapBytes == 0 {
		cfg.InitialHeapBytes = 4 << 20
	}
	if cfg.ReserveHeapBytes == 0 {
		cfg.ReserveHeapBytes = 32 << 20
	}
	w, err := core.NewWorld(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func newMachine(t *testing.T, w *core.World, mcfg machine.Config) *machine.Machine {
	t.Helper()
	if mcfg.StackTop == 0 {
		mcfg.StackTop = 0x80000000
	}
	if mcfg.StackBytes == 0 {
		mcfg.StackBytes = 1 << 20
	}
	m, err := machine.New(w.Space, mcfg)
	if err != nil {
		t.Fatal(err)
	}
	w.SetMutator(m)
	return m
}

func dataSeg(t *testing.T, w *core.World, bytes int) *mem.Segment {
	t.Helper()
	s, err := w.Space.MapNew("data", mem.KindData, 0x2000, bytes, bytes)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMakeListAndLen(t *testing.T) {
	w := newWorld(t, core.Config{GCDivisor: -1})
	head, err := MakeList(w, 10)
	if err != nil {
		t.Fatal(err)
	}
	n, err := ListLen(w, head)
	if err != nil || n != 10 {
		t.Fatalf("ListLen = %d, %v", n, err)
	}
	// First car is 1, per construction.
	v, _ := car(w, head)
	if v != 1 {
		t.Fatalf("car = %d", v)
	}
}

func TestAllocCycleIsCircular(t *testing.T) {
	w := newWorld(t, core.Config{GCDivisor: -1})
	head, err := allocCycle(w, nil, 50, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Walk 50 steps; must return to head, never hit 0.
	p := head
	for i := 0; i < 50; i++ {
		next, err := w.Load(p)
		if err != nil {
			t.Fatal(err)
		}
		if next == 0 {
			t.Fatalf("cycle broken at step %d", i)
		}
		p = mem.Addr(next)
	}
	if p != head {
		t.Fatalf("walk of 50 did not return to head: %#x != %#x", uint32(p), uint32(head))
	}
}

func TestProgramTCleanWorldCollectsEverything(t *testing.T) {
	// With no root pollution and no simulated machine, every list must
	// be reclaimed.
	w := newWorld(t, core.Config{GCDivisor: -1})
	res, err := RunProgramT(w, nil, ProgramTParams{NLists: 20, NodesPerList: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.RetainedLists != 0 {
		t.Fatalf("clean world retained %d/%d lists", res.RetainedLists, res.TotalLists)
	}
	if res.TotalLists != 20 {
		t.Fatalf("TotalLists = %d", res.TotalLists)
	}
}

func TestProgramTFalseRootsRetainWithoutBlacklisting(t *testing.T) {
	run := func(bl core.BlacklistMode) float64 {
		w := newWorld(t, core.Config{
			GCDivisor:        -1,
			Blacklisting:     bl,
			InitialHeapBytes: 2 << 20,
		})
		data := dataSeg(t, w, 64*1024)
		// Pollute the root segment with values spread across the heap's
		// eventual extent.
		rng := simrand.New(3)
		heapLo := uint32(w.Heap.Base())
		for i := 0; i < 16*1024; i++ {
			data.Store(0x2000+mem.Addr(4*i), mem.Word(heapLo+rng.Uint32n(2<<20)))
		}
		// Startup collection, as the paper requires for blacklisting.
		w.Collect()
		res, err := RunProgramT(w, nil, ProgramTParams{NLists: 40, NodesPerList: 500})
		if err != nil {
			t.Fatal(err)
		}
		return res.RetainedFraction()
	}
	off := run(core.BlacklistOff)
	on := run(core.BlacklistDense)
	if off < 0.2 {
		t.Fatalf("polluted world retained only %.2f without blacklisting", off)
	}
	if on > off/4 {
		t.Fatalf("blacklisting ineffective: %.2f -> %.2f", off, on)
	}
}

func TestProgramTWithMachine(t *testing.T) {
	w := newWorld(t, core.Config{AllocatorResidue: true})
	m := newMachine(t, w, machine.Config{FrameSlopWords: 4, RegisterWindows: true})
	res, err := RunProgramT(w, m, ProgramTParams{NLists: 10, NodesPerList: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Stack/register residue may retain a few lists, but not most.
	if res.RetainedLists > res.TotalLists/2 {
		t.Fatalf("retained %d/%d with machine", res.RetainedLists, res.TotalLists)
	}
}

func TestReversalLoopStaysSmall(t *testing.T) {
	w := newWorld(t, core.Config{})
	m := newMachine(t, w, machine.Config{FrameSlopWords: 8, RegisterWindows: true})
	res, err := RunReversal(w, m, ReverseParams{
		ListLen: 200, Iterations: 100, Mode: ReverseLoop, SampleEvery: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Live = original + current + previous ≈ 3 lists max.
	if res.MaxLiveCells > 4*200 {
		t.Fatalf("loop mode max live = %d cells", res.MaxLiveCells)
	}
	if res.Samples == 0 {
		t.Fatal("no samples taken")
	}
}

func TestReversalRecursiveRetainsMoreThanLoop(t *testing.T) {
	run := func(mode ReverseMode, clear machine.ClearPolicy) uint64 {
		w := newWorld(t, core.Config{AllocatorResidue: true})
		m := newMachine(t, w, machine.Config{
			FrameSlopWords: 8, RegisterWindows: true, Clear: clear,
		})
		res, err := RunReversal(w, m, ReverseParams{
			ListLen: 200, Iterations: 100, Mode: mode, SampleEvery: 2, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.MaxLiveCells
	}
	recursive := run(ReverseRecursive, machine.ClearNone)
	cleared := run(ReverseRecursive, machine.ClearCheap)
	loop := run(ReverseLoop, machine.ClearNone)
	if recursive <= loop {
		t.Fatalf("recursive (%d) should retain more than loop (%d)", recursive, loop)
	}
	if cleared >= recursive {
		t.Fatalf("cheap clearing (%d) should beat no clearing (%d)", cleared, recursive)
	}
}

func TestGridEmbeddedVsSeparate(t *testing.T) {
	w := newWorld(t, core.Config{GCDivisor: -1})
	emb, err := MeasureGridRetention(w, 30, 30, GridEmbedded, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	w2 := newWorld(t, core.Config{GCDivisor: -1})
	sep, err := MeasureGridRetention(w2, 30, 30, GridSeparate, 200, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Embedded: a false reference retains a large fraction (expected
	// ~25% for uniform targets). Separate: at most one row/column of
	// cons cells plus vertices, a much smaller fraction.
	if emb.MeanFractionPct < 10 {
		t.Fatalf("embedded retention only %.1f%%", emb.MeanFractionPct)
	}
	if sep.MeanFractionPct > emb.MeanFractionPct/3 {
		t.Fatalf("separate (%.1f%%) not much better than embedded (%.1f%%)",
			sep.MeanFractionPct, emb.MeanFractionPct)
	}
	// Separate-links worst case: one full row or column (cells +
	// vertices) ≈ 2*30+1; allow slack for the vertex payloads.
	if sep.MaxRetained > uint64(3*30+2) {
		t.Fatalf("separate max retained %d exceeds a row/column", sep.MaxRetained)
	}
}

func TestGridStructure(t *testing.T) {
	w := newWorld(t, core.Config{GCDivisor: -1})
	g, err := BuildGrid(w, 4, 5, GridEmbedded)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Objects) != 20 || len(g.RowHeaders) != 4 || len(g.ColHeaders) != 5 {
		t.Fatalf("embedded grid shape wrong: %d objects", len(g.Objects))
	}
	// Walking right from row header 0 visits 5 vertices.
	p := g.RowHeaders[0]
	count := 1
	for {
		next, err := w.Load(p)
		if err != nil {
			t.Fatal(err)
		}
		if next == 0 {
			break
		}
		p = mem.Addr(next)
		count++
	}
	if count != 5 {
		t.Fatalf("row walk visited %d vertices", count)
	}

	gs, err := BuildGrid(w, 4, 5, GridSeparate)
	if err != nil {
		t.Fatal(err)
	}
	// 20 vertices + 4 rows*5 cells + 5 cols*4 cells = 60 objects.
	if len(gs.Objects) != 60 {
		t.Fatalf("separate grid objects = %d, want 60", len(gs.Objects))
	}
	if _, err := BuildGrid(w, 0, 5, GridEmbedded); err == nil {
		t.Fatal("bad grid size accepted")
	}
}

func TestTreeRetentionApproximatesHeight(t *testing.T) {
	w := newWorld(t, core.Config{GCDivisor: -1})
	st, err := MeasureTreeRetention(w, 10, 2000, 7)
	if err != nil {
		t.Fatal(err)
	}
	if st.Nodes != 1023 {
		t.Fatalf("nodes = %d", st.Nodes)
	}
	// The paper: expected retention ≈ height. The exact expectation for
	// depth 10 is ~9; measured mean must be within 35%.
	if st.MeanRetained < st.TheoryRetained*0.65 || st.MeanRetained > st.TheoryRetained*1.35 {
		t.Fatalf("mean retained %.1f far from theory %.1f", st.MeanRetained, st.TheoryRetained)
	}
	// And drastically below the structure size.
	if st.MeanRetained > float64(st.Nodes)/10 {
		t.Fatalf("tree retention %.1f too close to full structure", st.MeanRetained)
	}
}

func TestQueueFIFO(t *testing.T) {
	w := newWorld(t, core.Config{GCDivisor: -1})
	q := NewQueue(w, false)
	for i := 0; i < 5; i++ {
		if _, err := q.Enqueue(mem.Word(100 + i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		v, err := q.Dequeue()
		if err != nil || v != mem.Word(100+i) {
			t.Fatalf("dequeue %d = %d, %v", i, v, err)
		}
	}
	if _, err := q.Dequeue(); err == nil {
		t.Fatal("dequeue on empty should fail")
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestQueueChurnUnboundedVsCleared(t *testing.T) {
	run := func(clear bool) *QueueChurnResult {
		w := newWorld(t, core.Config{GCDivisor: -1})
		data := dataSeg(t, w, 4096)
		res, err := RunQueueChurn(w, 50, 10000, clear, data, 0x2000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	dirty := run(false)
	clean := run(true)
	// Without clearing, the false reference retains the whole history:
	// final live ~ steps. With clearing, final live ~ window.
	if dirty.FinalLiveObjects < 5000 {
		t.Fatalf("uncleared queue retained only %d", dirty.FinalLiveObjects)
	}
	if clean.FinalLiveObjects > 200 {
		t.Fatalf("cleared queue retained %d", clean.FinalLiveObjects)
	}
}

func TestLazyStreamFalseRefRetains(t *testing.T) {
	run := func(falseRef bool) *LazyStreamResult {
		w := newWorld(t, core.Config{GCDivisor: -1})
		data := dataSeg(t, w, 4096)
		res, err := RunLazyStream(w, 10000, falseRef, data, 0x2000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	pinned := run(true)
	free := run(false)
	if pinned.FinalLiveObjects < 5000 {
		t.Fatalf("pinned stream retained only %d", pinned.FinalLiveObjects)
	}
	if free.FinalLiveObjects > 100 {
		t.Fatalf("free stream retained %d", free.FinalLiveObjects)
	}
	if _, err := RunLazyStream(newWorld(t, core.Config{}), 0, false, nil, 0); err == nil {
		t.Fatal("bad step count accepted")
	}
}

func TestLazyStreamMemoises(t *testing.T) {
	w := newWorld(t, core.Config{GCDivisor: -1})
	s := NewLazyStream(w)
	first, err := s.First()
	if err != nil {
		t.Fatal(err)
	}
	a, err := s.Force(first)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Force(first)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("Force not memoised")
	}
	if s.Produced != 2 {
		t.Fatalf("Produced = %d", s.Produced)
	}
}

func TestFalseRefTrialClearsMarks(t *testing.T) {
	w := newWorld(t, core.Config{GCDivisor: -1})
	tr, err := BuildBalancedTree(w, 5)
	if err != nil {
		t.Fatal(err)
	}
	rng := simrand.New(1)
	FalseRefTrial(w, tr.Nodes, rng)
	if n, _ := w.Heap.CountMarked(); n != 0 {
		t.Fatalf("%d marks left after trial", n)
	}
	// Objects are still allocated (no sweep).
	for _, n := range tr.Nodes {
		if !w.Heap.IsAllocated(n) {
			t.Fatal("trial freed an object")
		}
	}
}

func TestMakeListRootedSurvivesMidBuildCollections(t *testing.T) {
	// A tiny heap forces collections during the build; the rooted
	// variant must deliver a complete list anyway.
	w := newWorld(t, core.Config{
		InitialHeapBytes: 32 * 1024,
		ReserveHeapBytes: 8 << 20,
		GCDivisor:        2,
	})
	root := dataSeg(t, w, 4096)
	head, err := MakeListRooted(w, 20000, root, 0x2000)
	if err != nil {
		t.Fatal(err)
	}
	if w.Collections() == 0 {
		t.Fatal("test premise broken: no mid-build collections")
	}
	n, err := ListLen(w, head)
	if err != nil || n != 20000 {
		t.Fatalf("list length = %d, %v", n, err)
	}
}

func TestMakeListUnrootedIsEatenMidBuild(t *testing.T) {
	// The documented hazard of the plain variant, demonstrated: with
	// collections enabled and no roots, the prefix disappears.
	w := newWorld(t, core.Config{
		InitialHeapBytes: 32 * 1024,
		ReserveHeapBytes: 8 << 20,
		GCDivisor:        2,
	})
	head, err := MakeList(w, 20000)
	if err != nil {
		t.Fatal(err)
	}
	n, err := ListLen(w, head)
	if err != nil {
		t.Fatal(err)
	}
	if n >= 20000 {
		t.Fatalf("expected truncation, got %d cells", n)
	}
}
