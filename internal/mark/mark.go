// Package mark implements the conservative mark phase, including the
// paper's figure-2 "marking with blacklisting" algorithm.
//
// The marker receives candidate pointer values from root areas
// (registers, the mutator stack, static data segments) and from the
// fields of marked heap objects, and classifies each one:
//
//   - a valid object address (under the configured pointer-validity
//     policy): the object is marked and queued for scanning, unless the
//     containing block is pointer-free ("atomic");
//   - an invalid value in the vicinity of the heap — a value that
//     "could conceivably become a valid object address as a result of
//     later allocation": its page is blacklisted (the bold-face lines
//     in figure 2);
//   - anything else: ignored.
//
// Marking is iterative with an explicit mark stack rather than the
// figure's recursion, as in the real collector.
//
// Root candidate extraction supports two alignment regimes (paper,
// section 2 and figure 1): word-aligned candidates only, or every byte
// offset, where "the concatenation of the low order half word of an
// integer with the high order half word of the next integer can easily
// be a valid heap address". The unaligned regime reads big-endian
// words at all four byte offsets, which is how the paper's SPARC
// compiler's unaligned string constants turn into false pointers.
package mark

import (
	"repro/internal/alloc"
	"repro/internal/blacklist"
	"repro/internal/mem"
	"repro/internal/trace"
)

// PointerPolicy selects which candidate values are treated as valid
// pointers to an object.
type PointerPolicy int

// Pointer policies.
const (
	// PointerBase accepts only object base addresses. "Interior
	// pointers rarely need to be recognized if old C programs are run
	// with garbage collection" (paper, footnote 2).
	PointerBase PointerPolicy = iota
	// PointerInterior accepts any address inside an object, required
	// when "array elements can be passed by reference"; it "greatly
	// increases the chance of misidentification" (paper, section 2).
	PointerInterior
)

func (p PointerPolicy) String() string {
	if p == PointerInterior {
		return "interior"
	}
	return "base"
}

// AlignPolicy selects how candidates are extracted from root memory.
type AlignPolicy int

// Alignment policies.
const (
	// AlignedWords extracts one candidate per word, the common case on
	// machines that store pointers at word boundaries.
	AlignedWords AlignPolicy = iota
	// AnyByteOffset extracts a candidate at every byte offset, required
	// "if pointers are not guaranteed to be properly aligned", and
	// "greatly increasing the number of false pointers" (section 2).
	AnyByteOffset
)

func (a AlignPolicy) String() string {
	if a == AnyByteOffset {
		return "any-byte-offset"
	}
	return "word-aligned"
}

// Config parameterises a Marker.
type Config struct {
	Policy    PointerPolicy
	Alignment AlignPolicy
	// Blacklist receives near-heap false references. nil disables
	// blacklisting (the paper's comparison configuration).
	Blacklist blacklist.List
}

// Stats counts one marking cycle's activity (reset by Reset).
type Stats struct {
	WordsScanned     uint64 // root words examined
	Candidates       uint64 // candidate values tested (≥ WordsScanned under AnyByteOffset)
	ObjectsMarked    uint64
	BytesMarked      uint64
	FieldsScanned    uint64 // heap object words examined
	FalseNearHeap    uint64 // invalid candidates in the heap's vicinity (blacklisted)
	AtomicSkipped    uint64 // marked objects whose contents were not scanned
	InteriorResolved uint64 // valid candidates that were not base addresses
}

// Marker performs conservative marking over one heap.
type Marker struct {
	heap  *alloc.Allocator
	cfg   Config
	bl    blacklist.List
	stack []mem.Addr
	stats Stats
	// atomicMark switches Mark to the CAS-based MarkAtomic, required
	// when several markers share the heap (see parallel.go).
	atomicMark bool
	// atomicLoad switches ScanObject's heap-word reads to atomic loads,
	// required for detached background workers that scan while mutators
	// store concurrently (the stores are atomic too, via the heap
	// segment's atomic-store mode). Off for stop-the-world marking,
	// where exclusion already orders every access.
	atomicLoad bool
	// overflow, when set, is invoked after a push that grows the stack
	// to spillThreshold or beyond; parallel workers use it to shed work
	// onto the shared queue. nil for the serial marker.
	overflow func(*Marker)
	// tracer receives blacklist-addition events; nil (the default)
	// disables them at the cost of one compare per false reference.
	tracer *trace.Recorder
	// rec enables provenance recording (provenance.go): recs collects
	// one ParentRecord per first-mark, org tracks the scan context the
	// current candidates come from. Off by default; every touch of org
	// or recs is guarded by rec, so unrecorded cycles pay only
	// predictable branches and allocate nothing.
	rec  bool
	recs []ParentRecord
	org  provOrigin
}

// spillThreshold is the local mark-stack depth beyond which a parallel
// worker sheds chunks to the shared overflow queue.
const spillThreshold = 8192

// New creates a marker for the given heap.
func New(heap *alloc.Allocator, cfg Config) *Marker {
	bl := cfg.Blacklist
	if bl == nil {
		bl = blacklist.Disabled{}
	}
	return &Marker{heap: heap, cfg: cfg, bl: bl, stack: make([]mem.Addr, 0, 1024)}
}

// Config returns the marker's configuration.
func (m *Marker) Config() Config { return m.cfg }

// SetTracer attaches r to receive EvBlacklistPage events (nil
// detaches). Parallel workers may share one recorder: Emit is
// concurrency-safe.
func (m *Marker) SetTracer(r *trace.Recorder) { m.tracer = r }

// Reset clears per-cycle statistics. Mark bits are owned by the
// allocator and cleared by its sweep.
func (m *Marker) Reset() {
	m.stats = Stats{}
	m.stack = m.stack[:0]
}

// Stats returns the current cycle's statistics.
func (m *Marker) Stats() Stats { return m.stats }

// MarkValue processes one candidate value: figure 2 of the paper,
// without the recursion (the object is pushed for Drain to scan).
func (m *Marker) MarkValue(v mem.Word) {
	m.stats.Candidates++
	p := mem.Addr(v)
	// Candidate fast path: a value outside the heap's reserved hull can
	// be neither a valid object address nor "in the vicinity of the
	// heap", so the overwhelmingly common non-pointer root word costs
	// two compares instead of an object lookup plus a vicinity test.
	if lo, hi := m.heap.Hull(); p < lo || p >= hi {
		return
	}
	base, ok := m.heap.FindObject(p, m.cfg.Policy == PointerInterior)
	if !ok {
		// "if p is in the vicinity of the heap: add p to blacklist"
		if m.heap.InVicinity(p) {
			m.stats.FalseNearHeap++
			m.bl.Add(p)
			m.tracer.Emit(trace.EvBlacklistPage, int64(p), 0, 0)
		}
		return
	}
	if p != base {
		m.stats.InteriorResolved++
	}
	if m.atomicMark {
		if !m.heap.MarkAtomic(base) {
			return // already marked (possibly by another worker)
		}
	} else if !m.heap.Mark(base) {
		return // already marked
	}
	words, atomic := m.heap.ObjectSpan(base)
	m.stats.ObjectsMarked++
	m.stats.BytesMarked += uint64(words * mem.WordBytes)
	if m.rec {
		// This call set the mark bit (under parallel marking: won the
		// CAS), so it alone records the object's first-marking parent.
		m.recordWin(base, p, v)
	}
	if atomic {
		m.stats.AtomicSkipped++
		return
	}
	m.stack = append(m.stack, base)
	if m.overflow != nil && len(m.stack) >= spillThreshold {
		m.overflow(m)
	}
}

// MarkWords scans a word slice as a root area under the configured
// alignment policy. The words are interpreted as big-endian for the
// unaligned regime. While recording provenance, first-marks through
// MarkWords carry no area identity (Kind RootNone, Parent 0); use
// MarkRootArea to attribute them.
func (m *Marker) MarkWords(words []mem.Word) {
	if m.rec {
		m.org = provOrigin{}
	}
	m.markWordsChunk(words, 0)
}

// markWordsChunk scans words[:len(words)-tail] as root candidates; the
// trailing tail words are straddle context only — scanned by the
// unaligned pass but not as aligned candidates. Parallel root chunking
// uses tail=1 so that a candidate straddling two chunks is still seen
// by exactly one worker, keeping chunked scans candidate-for-candidate
// identical to a serial scan of the whole area.
func (m *Marker) markWordsChunk(words []mem.Word, tail int) {
	n := len(words) - tail
	m.stats.WordsScanned += uint64(n)
	if m.rec {
		m.markWordsChunkRecorded(words, n)
		return
	}
	for _, w := range words[:n] {
		m.MarkValue(w)
	}
	if m.cfg.Alignment == AnyByteOffset {
		// Candidates straddling word boundaries: big-endian
		// concatenations of adjacent words at byte offsets 1..3.
		for i := 0; i+1 < len(words); i++ {
			hi, lo := uint32(words[i]), uint32(words[i+1])
			m.MarkValue(mem.Word(hi<<8 | lo>>24))
			m.MarkValue(mem.Word(hi<<16 | lo>>16))
			m.MarkValue(mem.Word(hi<<24 | lo>>8))
		}
	}
}

// markWordsChunkRecorded is markWordsChunk's provenance-recording body:
// the same candidates in the same order, with the origin index (and,
// for straddles, byte offset) maintained so a first-mark records the
// exact root word responsible.
func (m *Marker) markWordsChunkRecorded(words []mem.Word, n int) {
	for i, w := range words[:n] {
		m.org.index = m.org.base + int32(i)
		m.MarkValue(w)
	}
	if m.cfg.Alignment == AnyByteOffset {
		for i := 0; i+1 < len(words); i++ {
			hi, lo := uint32(words[i]), uint32(words[i+1])
			m.org.index = m.org.base + int32(i)
			m.org.off = 1
			m.MarkValue(mem.Word(hi<<8 | lo>>24))
			m.org.off = 2
			m.MarkValue(mem.Word(hi<<16 | lo>>16))
			m.org.off = 3
			m.MarkValue(mem.Word(hi<<24 | lo>>8))
			m.org.off = 0
		}
	}
}

// MarkSegment scans a whole segment's committed words as a root area.
func (m *Marker) MarkSegment(s *mem.Segment) { m.MarkWords(s.Words()) }

// MarkRootSegments scans every segment flagged as a root in the space.
func (m *Marker) MarkRootSegments(space *mem.AddressSpace) {
	for _, s := range space.Roots() {
		m.MarkSegment(s)
	}
}

// ScanObject scans the fields of the object at base as pointer
// candidates, regardless of the object's own mark state. Minor
// collections use it to rescan old (marked) objects on dirty pages for
// old-to-young pointers; atomic objects scan as nothing.
func (m *Marker) ScanObject(base mem.Addr) {
	words, kind, desc := m.heap.ScanInfo(base)
	if kind == alloc.ScanAtomic {
		return
	}
	ws := m.heap.ObjectWords(base, words)
	if kind == alloc.ScanTyped {
		if m.rec {
			m.org = provOrigin{kind: RootNone, area: base, declared: true}
		}
		// Exact layout information: only the descriptor's pointer
		// words are candidates ("complete information on the location
		// of pointers in the heap").
		for i := 0; i < desc.Words; i++ {
			if desc.PointerAt(i) {
				m.stats.FieldsScanned++
				if w := m.fieldWord(ws, i); w != 0 {
					if m.rec {
						m.org.index = int32(i)
					}
					m.MarkValue(w)
				}
			}
		}
		return
	}
	if m.rec {
		m.org = provOrigin{kind: RootNone, area: base}
	}
	m.stats.FieldsScanned += uint64(words)
	if m.atomicLoad {
		for i := range ws {
			if w := mem.LoadWordAtomic(&ws[i]); w != 0 {
				if m.rec {
					m.org.index = int32(i)
				}
				m.MarkValue(w)
			}
		}
		return
	}
	for i, w := range ws {
		if w != 0 { // zero is never a heap address
			if m.rec {
				m.org.index = int32(i)
			}
			m.MarkValue(w)
		}
	}
}

// fieldWord reads one heap object word, atomically when the marker runs
// detached from the store path's lock.
func (m *Marker) fieldWord(ws []mem.Word, i int) mem.Word {
	if m.atomicLoad {
		return mem.LoadWordAtomic(&ws[i])
	}
	return ws[i]
}

// Drain transitively scans queued objects until the mark stack is
// empty. Heap objects are scanned word-aligned regardless of the root
// alignment policy: the collector allocates objects word-aligned, so
// "newer compilers almost always guarantee adequate alignment" applies
// to the heap unconditionally.
func (m *Marker) Drain() {
	for len(m.stack) > 0 {
		obj := m.stack[len(m.stack)-1]
		m.stack = m.stack[:len(m.stack)-1]
		m.ScanObject(obj)
	}
}

// DrainN scans up to n queued objects and reports whether the mark
// stack is now empty. Incremental collection uses it to bound the
// marking work done per allocation.
func (m *Marker) DrainN(n int) bool {
	for i := 0; i < n && len(m.stack) > 0; i++ {
		obj := m.stack[len(m.stack)-1]
		m.stack = m.stack[:len(m.stack)-1]
		m.ScanObject(obj)
	}
	return len(m.stack) == 0
}

// Pending returns the number of objects awaiting scanning.
func (m *Marker) Pending() int { return len(m.stack) }

// TakePending removes and returns the queued (marked but unscanned)
// objects. A concurrent cycle's snapshot pause scans roots with the
// serial marker, then hands the resulting gray set to the parallel
// workers through this.
func (m *Marker) TakePending() []mem.Addr {
	if len(m.stack) == 0 {
		return nil
	}
	out := append([]mem.Addr(nil), m.stack...)
	m.stack = m.stack[:0]
	return out
}
