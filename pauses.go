package repro

import (
	"fmt"
	"time"

	"repro/internal/stats"
	"repro/internal/workload"
)

// PauseRow is one collector mode's pause profile (E16).
type PauseRow struct {
	Mode         string
	Collections  int
	MaxPause     time.Duration // longest single Allocate call
	MeanPause    time.Duration // mean over calls that exceeded the median
	TotalGCWork  time.Duration
	FinalLiveObj uint64
}

// PausesOptions configures the experiment.
type PausesOptions struct {
	LiveObjects int // long-lived list length (default 150000)
	Churn       int // short-lived allocations (default 300000)
	Seed        uint64
}

// Pauses compares mutator-visible pause times across the collector
// modes: stop-the-world (the paper's collector), incremental (its
// reference [8], "concurrent collectors that greatly reduce client
// pause times"), and generational (reference [13], cheap minor
// cycles). The mutator churns short-lived objects over a large
// long-lived structure; the pause is the latency of the worst single
// allocation call.
func Pauses(opt PausesOptions) ([]PauseRow, *stats.Table, error) {
	if opt.LiveObjects == 0 {
		opt.LiveObjects = 150000
	}
	if opt.Churn == 0 {
		opt.Churn = 300000
	}
	configs := []struct {
		label string
		cfg   Config
	}{
		{"stop-the-world", Config{GCDivisor: 2}},
		{"incremental", Config{Incremental: true, GCDivisor: 2, MarkQuantum: 64}},
		{"generational", Config{Generational: true, MinorDivisor: 4, FullEvery: 16}},
	}
	var rows []PauseRow
	for _, c := range configs {
		row, err := pausesRun(opt, c.label, c.cfg)
		if err != nil {
			return nil, nil, err
		}
		rows = append(rows, *row)
	}
	tab := stats.NewTable("Pause times: stop-the-world vs incremental vs generational",
		"Mode", "Collections", "Worst pause", "Total GC-bearing time", "Live at end")
	for _, r := range rows {
		tab.AddF(r.Mode, r.Collections,
			fmt.Sprintf("%.2fms", float64(r.MaxPause.Microseconds())/1000),
			fmt.Sprintf("%.2fms", float64(r.TotalGCWork.Microseconds())/1000),
			r.FinalLiveObj)
	}
	return rows, tab, nil
}

func pausesRun(opt PausesOptions, label string, cfg Config) (*PauseRow, error) {
	cfg.InitialHeapBytes = 4 << 20
	cfg.ReserveHeapBytes = 64 << 20
	w, err := NewWorld(cfg)
	if err != nil {
		return nil, err
	}
	data, err := w.Space.MapNew("data", KindData, 0x2000, 4096, 4096)
	if err != nil {
		return nil, err
	}
	// The long-lived structure, kept rooted while it is built so that
	// mid-build collections (certain in generational mode) cannot eat
	// the partial list.
	head, err := workload.MakeListRooted(w, opt.LiveObjects, data, 0x2000)
	if err != nil {
		return nil, err
	}
	if err := data.Store(0x2000, Word(head)); err != nil {
		return nil, err
	}
	w.Collect() // settle (and, if generational, tenure) the structure

	var maxPause, total time.Duration
	for i := 0; i < opt.Churn; i++ {
		start := time.Now()
		if _, err := w.Allocate(2, false); err != nil {
			return nil, err
		}
		d := time.Since(start)
		total += d
		if d > maxPause {
			maxPause = d
		}
	}
	st := w.Heap.Stats()
	return &PauseRow{
		Mode:         label,
		Collections:  w.Collections(),
		MaxPause:     maxPause,
		TotalGCWork:  total,
		FinalLiveObj: st.ObjectsLive,
	}, nil
}
