package core

import (
	"fmt"
	"time"

	"repro/internal/trace"
)

// Incremental collection, after the mostly-parallel design the paper
// cites as its pause-time companion (Boehm, Demers & Shenker, PLDI
// 1991 — the paper's reference [8]; the paper notes its own root-scan
// "time overhead involved in this could be largely eliminated by the
// techniques in [8]").
//
// A cycle starts with a snapshot root scan, then marking proceeds in
// bounded steps piggybacked on allocations while the mutator keeps
// running; writes during the cycle dirty their heap page. The short
// stop-the-world finale rescans dirty pages and the (possibly changed)
// roots, drains, and sweeps. Objects allocated during the cycle are
// unmarked and therefore must be re-reached via the finale's root scan
// or a dirtied page — which is exactly what the write barrier
// guarantees.

// StartIncrementalCycle begins an incremental collection. It is a
// no-op if a cycle is already active. Outside incremental mode it is
// an error.
func (w *World) StartIncrementalCycle() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stwStartIncremental()
}

// stwStartIncremental stops the mutators (the snapshot root scan must
// see quiescent stacks, and the FinishSweep barrier reclassifies
// blocks) and begins a cycle. Callers hold w.mu.
func (w *World) stwStartIncremental() error {
	if !w.cfg.Incremental {
		return fmt.Errorf("core: StartIncrementalCycle outside incremental mode")
	}
	if w.incActive {
		return nil
	}
	w.stopMutatorsLocked()
	defer w.resumeMutatorsLocked()
	w.tracer.Emit(trace.EvCycleBegin, int64(w.collections+1), int64(w.Heap.Stats().HeapBytes), 2)
	// Deferred lazy sweeps hold the previous cycle's liveness in their
	// mark bits; they must land before this cycle marks anything.
	w.Heap.FinishSweep()
	// Central bump spans (LineAlloc) hold carved-but-unissued slots
	// whose alloc bits would read as live objects; return them before
	// the cycle observes any bits.
	w.Heap.FlushSpans()
	w.Blacklist.BeginCycle()
	w.Marker.Reset()
	if w.prov.enabled {
		// Incremental cycles mark serially whatever MarkWorkers says, so
		// recording lives on the serial marker; the finale harvests it.
		w.Marker.StartRecording()
	}
	w.Heap.ClearDirty()
	w.markRoots()
	w.incActive = true
	return nil
}

// IncrementalActive reports whether a cycle is in progress.
func (w *World) IncrementalActive() bool { return w.incActive }

// IncrementalStep performs up to quantum objects of marking work,
// returning true when the mark stack is drained (the cycle is ready to
// finish).
func (w *World) IncrementalStep(quantum int) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.incrementalStepLocked(quantum)
}

// incrementalStepLocked is the marking-step body; callers hold w.mu.
// Steps only advance the mark stack — no sweep, no classification —
// so mutators keep running.
func (w *World) incrementalStepLocked(quantum int) bool {
	if !w.incActive {
		return true
	}
	if quantum <= 0 {
		quantum = 64
	}
	w.incSteps++
	done := w.Marker.DrainN(quantum)
	w.tracer.Emit(trace.EvIncStep, int64(w.incSteps), int64(w.Marker.Pending()), 0)
	return done
}

// FinishIncrementalCycle runs the stop-the-world finale: rescan pages
// dirtied during the concurrent phase and the current roots, drain,
// and sweep. Returns the cycle's statistics; the Duration field covers
// only the finale — the pause the mutator actually observes.
func (w *World) FinishIncrementalCycle() CollectionStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stwFinishIncremental()
}

// stwFinishIncremental stops the mutators and runs the finale.
// Callers hold w.mu.
func (w *World) stwFinishIncremental() CollectionStats {
	w.stopMutatorsLocked()
	defer w.resumeMutatorsLocked()
	return w.finishIncrementalLocked()
}

// finishIncrementalLocked is the finale body. Callers hold w.mu with
// every mutator stopped and flushed (the finale sweeps; see
// collectLocked).
func (w *World) finishIncrementalLocked() CollectionStats {
	if !w.incActive {
		return w.last
	}
	start := time.Now()
	w.tracer.Emit(trace.EvMarkBegin, int64(w.collections+1), 1, 2)
	w.Heap.DirtyBlocks(func(bi int) {
		w.Heap.ForEachMarkedObject(bi, w.Marker.ScanObject)
	})
	w.markRoots()
	w.Marker.Drain()
	pauseMark := time.Since(start)
	w.traceMarkEnd(w.Marker.Stats())
	for a := range w.finalizable {
		if !w.Heap.Marked(a) {
			w.reclaimed = append(w.reclaimed, a)
			delete(w.finalizable, a)
		}
	}
	w.traceSweepBegin(2)
	sweepStart := time.Now()
	// Spans carved since the cycle started hold unissued slots; return
	// them so the sweep's alloc-bit survey matches reality (returned
	// slots also drop any conservative mark they picked up mid-cycle).
	w.Heap.FlushSpans()
	sweep := w.Heap.Sweep()
	pauseSweep := time.Since(sweepStart)
	w.Heap.ResetSinceGC()
	w.Heap.ClearDirty()
	if w.cfg.ExpireAge > 0 {
		w.Blacklist.Expire(w.cfg.ExpireAge)
	}
	w.collections++
	w.incActive = false
	provRecs := w.harvestProvenance(2)
	w.last = CollectionStats{
		Mark:                w.Marker.Stats(),
		Sweep:               sweep,
		Blacklist:           w.Blacklist.Stats(),
		Duration:            time.Since(start),
		HeapBytes:           w.Heap.Stats().HeapBytes,
		Incremental:         true,
		Steps:               w.incSteps,
		PauseMarkNs:         pauseMark.Nanoseconds(),
		PauseSweepNs:        pauseSweep.Nanoseconds(),
		PauseStopNs:         w.lastStopNs,
		SweepDeferredBlocks: w.Heap.SweepPending(),
		Provenance:          w.prov.enabled,
		ProvenanceRecords:   provRecs,
	}
	w.incSteps = 0
	w.traceCycleEnd(w.last)
	w.fireHook()
	return w.last
}
