package repro

import "testing"

// TestFragmentationSpaceAccounting runs the fragmentation churn under
// both allocation profiles, with small objects interleaved so
// dedicated small blocks (and, under LineAlloc, partly-live lines)
// exist, and asserts the reported space metrics are internally
// consistent: every committed byte lands in exactly one bucket, and
// the line-waste metric is a subdivision of the free-slot space.
func TestFragmentationSpaceAccounting(t *testing.T) {
	const heapBytes = 8 << 20
	for _, lineAlloc := range []bool{false, true} {
		name := "freelist"
		if lineAlloc {
			name = "line"
		}
		t.Run(name, func(t *testing.T) {
			rows, _, err := Fragmentation(FragmentationOptions{
				HeapBytes: heapBytes, Rounds: 6, Seed: 7,
				LineAlloc:  lineAlloc,
				SmallWords: []int{4, 8, 16, 64},
			})
			if err != nil {
				t.Fatal(err)
			}
			for _, r := range rows {
				sb := r.Space
				if sb.HeapBytes != heapBytes {
					t.Errorf("%v: breakdown covers %d bytes, heap is %d",
						r.Policy, sb.HeapBytes, heapBytes)
				}
				if got := sb.Sum(); got != sb.HeapBytes {
					t.Errorf("%v: space buckets sum to %d, heap is %d: %+v",
						r.Policy, got, sb.HeapBytes, sb)
				}
				// Small churn must leave both live objects and reusable
				// small-block space. Under free lists the latter is
				// free-list-threaded slots; under the line profile, with no
				// collection to run the line sweep, freed slots sit carved
				// in the explicit-free LIFO and central spans (Cached).
				if sb.LiveBytes == 0 || sb.FreeSlotBytes+sb.CachedBytes == 0 {
					t.Errorf("%v: small churn left no live (%d) or reusable (%d+%d) bytes",
						r.Policy, sb.LiveBytes, sb.FreeSlotBytes, sb.CachedBytes)
				}
				if !lineAlloc && sb.CachedBytes != 0 {
					t.Errorf("%v: free-list profile reported %d cached bytes",
						r.Policy, sb.CachedBytes)
				}
				if lineAlloc {
					if r.Lines.LineBlocks == 0 {
						t.Errorf("%v: line profile dedicated no line blocks", r.Policy)
					}
					if r.Lines.LiveLines+r.Lines.FreeLines != r.Lines.TotalLines {
						t.Errorf("%v: lines do not conserve: live %d + free %d != total %d",
							r.Policy, r.Lines.LiveLines, r.Lines.FreeLines, r.Lines.TotalLines)
					}
					if r.Lines.WasteBytes > uint64(sb.FreeSlotBytes) {
						t.Errorf("%v: line waste %d exceeds free-slot space %d",
							r.Policy, r.Lines.WasteBytes, sb.FreeSlotBytes)
					}
				} else if r.Lines != (LineStats{}) {
					t.Errorf("%v: free-list profile reported line stats %+v", r.Policy, r.Lines)
				}
			}
		})
	}
}

// TestFragmentationDefaultUnchanged pins that the default options keep
// the paper's pure block-span churn: no small blocks are dedicated, so
// the accounting is blocks plus large objects only.
func TestFragmentationDefaultUnchanged(t *testing.T) {
	rows, _, err := Fragmentation(FragmentationOptions{HeapBytes: 4 << 20, Rounds: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Space.FreeSlotBytes != 0 || r.Space.OverheadBytes != 0 {
			t.Errorf("%v: pure block churn dedicated small blocks: %+v", r.Policy, r.Space)
		}
		if got := r.Space.Sum(); got != r.Space.HeapBytes {
			t.Errorf("%v: space buckets sum to %d, heap is %d", r.Policy, got, r.Space.HeapBytes)
		}
	}
}
