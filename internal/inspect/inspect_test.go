package inspect

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/blacklist"
	"repro/internal/core"
	"repro/internal/mem"
)

func buildWorld(t *testing.T) *core.World {
	t.Helper()
	w, err := core.NewWorld(nil, core.Config{
		InitialHeapBytes: 64 * 1024,
		ReserveHeapBytes: 1 << 20,
		Blacklisting:     core.BlacklistDense,
		GCDivisor:        -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestHeapMapShapes(t *testing.T) {
	w := buildWorld(t)
	if _, err := w.Heap.Alloc(1, false); err != nil { // 'a' block
		t.Fatal(err)
	}
	if _, err := w.Heap.Alloc(2, true); err != nil { // 'B' block (atomic)
		t.Fatal(err)
	}
	if _, err := w.Heap.Alloc(3*mem.PageWords, false); err != nil { // '#=='
		t.Fatal(err)
	}
	w.Blacklist.Add(w.Heap.Base() + 10*mem.PageBytes) // '!' on a free page

	m := HeapMap(w.Heap, w.Blacklist, 16)
	for _, want := range []string{"a", "B", "#==", "!", "."} {
		if !strings.Contains(m, want) {
			t.Errorf("map missing %q:\n%s", want, m)
		}
	}
	if !strings.Contains(m, "0x") {
		t.Error("map missing address prefixes")
	}
	// 16 blocks of committed heap -> exactly one row.
	lines := strings.Split(strings.TrimRight(m, "\n"), "\n")
	if len(lines) != 2 { // map row + legend
		t.Fatalf("expected 1 map row + legend, got %d lines:\n%s", len(lines), m)
	}
}

func TestHeapMapDesperateMarker(t *testing.T) {
	w := buildWorld(t)
	// Blacklist everything, then allocate desperately.
	for i := 0; i < w.Heap.NumBlocks(); i++ {
		w.Blacklist.Add(w.Heap.Base() + mem.Addr(i*mem.PageBytes))
	}
	if _, err := w.Heap.AllocDesperate(2, false); err != nil {
		t.Fatal(err)
	}
	m := HeapMap(w.Heap, w.Blacklist, 0)
	if !strings.Contains(m, "*") {
		t.Errorf("map missing desperate marker:\n%s", m)
	}
}

func TestSummary(t *testing.T) {
	w := buildWorld(t)
	p, _ := w.Allocate(2, false)
	data, err := w.Space.MapNew("d", mem.KindData, 0x2000, 4096, 4096)
	if err != nil {
		t.Fatal(err)
	}
	data.Store(0x2000, mem.Word(p))
	w.Collect()
	s := Summary(w)
	for _, want := range []string{"heap:", "live:", "collections: 1", "blacklist:"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains(s, "1 objects") {
		t.Errorf("summary should show one live object:\n%s", s)
	}
}

func TestBlacklistedPages(t *testing.T) {
	w := buildWorld(t)
	w.Blacklist.Add(w.Heap.Base() + mem.PageBytes)
	pages := BlacklistedPages(w.Blacklist)
	if len(pages) != 1 || pages[0] != w.Heap.Base()+mem.PageBytes {
		t.Fatalf("pages = %v", pages)
	}
	if BlacklistedPages(blacklist.Disabled{}) != nil {
		t.Error("disabled blacklist should report nil pages")
	}
}

func TestTraceLine(t *testing.T) {
	w := buildWorld(t)
	var lines []string
	n := 0
	w.SetCollectionHook(func(st core.CollectionStats) {
		n++
		lines = append(lines, TraceLine(n, st))
	})
	p, _ := w.Allocate(2, false)
	_ = p
	w.Collect()
	if len(lines) != 1 {
		t.Fatalf("hook fired %d times", len(lines))
	}
	if !strings.Contains(lines[0], "gc 1: full") || !strings.Contains(lines[0], "freed") {
		t.Fatalf("trace line = %q", lines[0])
	}
	// Unregister: no more lines.
	w.SetCollectionHook(nil)
	w.Collect()
	if len(lines) != 1 {
		t.Fatal("hook fired after unregister")
	}
}

func TestTraceLineMinorAndIncremental(t *testing.T) {
	gw, err := core.NewWorld(nil, core.Config{
		Generational: true, GCDivisor: -1, MinorDivisor: -1,
		InitialHeapBytes: 64 * 1024, ReserveHeapBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	gw.Collect()
	st := gw.CollectMinor()
	if line := TraceLine(2, st); !strings.Contains(line, "minor") || !strings.Contains(line, "promoted") {
		t.Fatalf("minor trace line = %q", line)
	}
	iw, err := core.NewWorld(nil, core.Config{
		Incremental: true, GCDivisor: -1,
		InitialHeapBytes: 64 * 1024, ReserveHeapBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	iw.StartIncrementalCycle()
	ist := iw.FinishIncrementalCycle()
	if line := TraceLine(1, ist); !strings.Contains(line, "incremental") {
		t.Fatalf("incremental trace line = %q", line)
	}
}

func TestHeapMapAcrossExtents(t *testing.T) {
	w, err := core.NewWorld(nil, core.Config{
		InitialHeapBytes:    4 * mem.PageBytes,
		ReserveHeapBytes:    4 * mem.PageBytes,
		ExpandIncrement:     mem.PageBytes,
		DiscontiguousGrowth: true,
		Blacklisting:        core.BlacklistHashed,
		GCDivisor:           -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Force a second extent.
	for i := 0; i < 6; i++ {
		if _, err := w.Heap.AllocIgnoreOffPage(mem.PageWords, false); err != nil {
			if err := w.Heap.Expand(mem.PageBytes); err != nil {
				t.Fatal(err)
			}
			if _, err := w.Heap.AllocIgnoreOffPage(mem.PageWords, false); err != nil {
				t.Fatal(err)
			}
		}
	}
	if w.Heap.Extents() < 2 {
		t.Fatalf("extents = %d", w.Heap.Extents())
	}
	m := HeapMap(w.Heap, w.Blacklist, 4)
	// Rows exist for addresses in both extents (the second extent's
	// base is far from the first).
	if !strings.Contains(m, "#") {
		t.Fatalf("map missing large blocks:\n%s", m)
	}
	lines := strings.Count(m, "\n")
	if lines < 3 {
		t.Fatalf("map too short for two extents:\n%s", m)
	}
}

func TestHeapMapRowAddressesFollowExtents(t *testing.T) {
	w, err := core.NewWorld(nil, core.Config{
		InitialHeapBytes:    4 * mem.PageBytes,
		ReserveHeapBytes:    4 * mem.PageBytes,
		ExpandIncrement:     mem.PageBytes,
		DiscontiguousGrowth: true,
		Blacklisting:        core.BlacklistHashed,
		GCDivisor:           -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Heap.Expand(5 * mem.PageBytes); err != nil { // exhaust + new extent
		t.Fatal(err)
	}
	if w.Heap.Extents() < 2 {
		t.Fatalf("extents = %d", w.Heap.Extents())
	}
	// With width 4, the second row starts at the second extent, whose
	// base is far from first-extent addresses.
	m := HeapMap(w.Heap, w.Blacklist, 4)
	secondBase := w.Heap.BlockInfo(4).Base
	if !strings.Contains(m, strings.ToLower(
		"0x"+fmt.Sprintf("%08x", uint32(secondBase)))) {
		t.Fatalf("map rows do not show the second extent's address %#x:\n%s",
			uint32(secondBase), m)
	}
}
