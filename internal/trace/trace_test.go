package trace

import (
	"bytes"
	"encoding/json"
	"sync"
	"testing"
)

func TestEmitAndEventsInOrder(t *testing.T) {
	r := New(16)
	for i := 0; i < 10; i++ {
		r.Emit(EvCycleBegin, int64(i), 0, 0)
	}
	evs := r.Events()
	if len(evs) != 10 {
		t.Fatalf("len(Events) = %d, want 10", len(evs))
	}
	for i, ev := range evs {
		if ev.Kind != EvCycleBegin || ev.A0 != int64(i) {
			t.Fatalf("event %d = %+v", i, ev)
		}
		if i > 0 && ev.TimeNs < evs[i-1].TimeNs {
			t.Fatalf("timestamps regress at %d: %d < %d", i, ev.TimeNs, evs[i-1].TimeNs)
		}
	}
	if r.Emitted() != 10 || r.Dropped() != 0 {
		t.Fatalf("Emitted/Dropped = %d/%d", r.Emitted(), r.Dropped())
	}
}

func TestWraparoundKeepsNewest(t *testing.T) {
	r := New(8)
	for i := 0; i < 20; i++ {
		r.Emit(EvMarkEnd, int64(i), 0, 0)
	}
	evs := r.Events()
	if len(evs) != 8 {
		t.Fatalf("len(Events) = %d, want capacity 8", len(evs))
	}
	// The survivors are the newest 8, still oldest-first.
	for i, ev := range evs {
		if want := int64(12 + i); ev.A0 != want {
			t.Fatalf("event %d has A0 %d, want %d", i, ev.A0, want)
		}
	}
	if r.Emitted() != 20 {
		t.Fatalf("Emitted = %d, want 20", r.Emitted())
	}
	if r.Dropped() != 12 {
		t.Fatalf("Dropped = %d, want 12", r.Dropped())
	}
}

func TestWraparoundAtExactCapacity(t *testing.T) {
	r := New(4)
	for i := 0; i < 4; i++ {
		r.Emit(EvSweepEnd, int64(i), 0, 0)
	}
	evs := r.Events()
	if len(evs) != 4 || evs[0].A0 != 0 || evs[3].A0 != 3 {
		t.Fatalf("events at exact capacity: %+v", evs)
	}
	if r.Dropped() != 0 {
		t.Fatalf("Dropped = %d at exact capacity", r.Dropped())
	}
}

func TestReset(t *testing.T) {
	r := New(4)
	for i := 0; i < 9; i++ {
		r.Emit(EvIncStep, int64(i), 0, 0)
	}
	r.Reset()
	if len(r.Events()) != 0 || r.Emitted() != 0 || r.Dropped() != 0 {
		t.Fatalf("Reset left state: %d events, %d emitted, %d dropped",
			len(r.Events()), r.Emitted(), r.Dropped())
	}
	r.Emit(EvIncStep, 42, 0, 0)
	if evs := r.Events(); len(evs) != 1 || evs[0].A0 != 42 {
		t.Fatalf("post-Reset events: %+v", evs)
	}
}

// The disabled state is a nil recorder; emitting through it must do
// nothing and allocate nothing — this is the fast path every un-traced
// collection takes.
func TestDisabledEmitZeroAllocs(t *testing.T) {
	var r *Recorder
	if r.Enabled() {
		t.Fatal("nil recorder reports enabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		r.Emit(EvBlacklistPage, 0xdead, 0, 0)
	})
	if allocs != 0 {
		t.Fatalf("disabled Emit allocates %.1f per call, want 0", allocs)
	}
	if r.Events() != nil || r.Emitted() != 0 || r.Capacity() != 0 {
		t.Fatal("nil recorder accessors not empty")
	}
	r.Reset() // must not panic
}

// Enabled emits must not allocate either: the buffer is preallocated
// and events are fixed-size values.
func TestEnabledEmitZeroAllocs(t *testing.T) {
	r := New(64)
	allocs := testing.AllocsPerRun(1000, func() {
		r.Emit(EvSweepDrain, 1, 2, 3)
	})
	if allocs != 0 {
		t.Fatalf("enabled Emit allocates %.1f per call, want 0", allocs)
	}
}

func TestConcurrentEmit(t *testing.T) {
	r := New(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Emit(EvWorkerMark, int64(g), int64(i), 0)
			}
		}(g)
	}
	wg.Wait()
	if r.Emitted() != 4000 {
		t.Fatalf("Emitted = %d, want 4000", r.Emitted())
	}
	if got := len(r.Events()); got != 128 {
		t.Fatalf("surviving events = %d, want 128", got)
	}
}

func TestWriteJSON(t *testing.T) {
	r := New(8)
	r.Emit(EvCycleBegin, 1, 4096, 0)
	r.Emit(EvCycleEnd, 1, 10, 80)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Capacity int    `json:"capacity"`
		Emitted  uint64 `json:"emitted"`
		Dropped  uint64 `json:"dropped"`
		Events   []struct {
			TimeNs int64    `json:"t_ns"`
			Kind   string   `json:"kind"`
			Args   [3]int64 `json:"args"`
		} `json:"events"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.Capacity != 8 || doc.Emitted != 2 || doc.Dropped != 0 {
		t.Fatalf("envelope = %+v", doc)
	}
	if len(doc.Events) != 2 || doc.Events[0].Kind != "cycle_begin" ||
		doc.Events[1].Kind != "cycle_end" || doc.Events[1].Args != [3]int64{1, 10, 80} {
		t.Fatalf("events = %+v", doc.Events)
	}
}

func TestNilWriteJSON(t *testing.T) {
	var r *Recorder
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(buf.Bytes(), []byte(`"events": []`)) {
		t.Fatalf("nil export = %s", buf.String())
	}
}

func TestKindStrings(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		if k.String() == "" || k.String() == "unknown" {
			t.Fatalf("kind %d has no name", k)
		}
	}
	if Kind(255).String() != "unknown" {
		t.Fatal("out-of-range kind not reported unknown")
	}
}
